// CompiledModel: the immutable, thread-shareable product of the offline
// modeling pipeline (decycled DAG + forest + TopologyCatalog + static prompt
// segments), built once per application build and shared read-only across
// every per-run DmiSession via shared_ptr (DESIGN.md §10).
//
// This is the amortization split: everything here is a pure function of the
// ripped NavGraph and the modeling options, so the suite harness compiles it
// once per AppKind and thin sessions attach in O(dynamic state).
#ifndef SRC_DMI_COMPILED_MODEL_H_
#define SRC_DMI_COMPILED_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/describe/catalog.h"
#include "src/dmi/interaction.h"
#include "src/dmi/visit.h"
#include "src/ripper/delta.h"
#include "src/ripper/ripper.h"
#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace dmi {

struct ModelingOptions {
  ripper::RipperConfig ripper_config;
  // Synthesize descriptions for undocumented controls before serialization
  // (§5.7 "Rich control descriptions"; rule-based, never overwrites app
  // metadata).
  bool augment_descriptions = false;
  std::vector<ripper::RipContext> contexts;
  uint64_t externalize_threshold = topo::kDefaultExternalizeThreshold;
  desc::PruneOptions prune;
  desc::DescribeOptions describe;
  VisitConfig visit;
  InteractionConfig interaction;
};

struct ModelingStats {
  topo::GraphStats raw;
  size_t back_edges_removed = 0;
  size_t unreachable_dropped = 0;
  size_t forest_nodes = 0;
  size_t shared_subtrees = 0;
  size_t references = 0;
  size_t core_nodes = 0;
  size_t core_tokens = 0;
  size_t full_tokens = 0;
  ripper::RipStats rip;
};

// A target resolved from human-readable names to DMI's id language.
struct ResolvedTarget {
  int id = -1;
  std::vector<int> entry_ref_ids;
};

class CompiledModel {
 public:
  // Runs the full offline pipeline (augment → decycle → selective
  // externalization → catalog) over a pre-ripped graph. The input graph is
  // read-only; a private copy is made only when augmentation must mutate it.
  // The result is immutable and safe to share across threads: the catalog's
  // lazy caches are call_once-guarded on an immutable forest (DESIGN.md §9).
  // `rip` (optional) folds the ripper's counters into stats(), making the
  // model a self-contained record for artifact persistence. `checksums`
  // (optional) attaches the app's per-subtree structural checksum table
  // (ripper::ComputeSubtreeChecksums) so the saved artifact can serve as a
  // delta-rip baseline (DESIGN.md §15).
  static std::shared_ptr<const CompiledModel> Compile(
      const topo::NavGraph& graph, const ModelingOptions& options,
      const ripper::RipStats* rip = nullptr, const ripper::ChecksumTable* checksums = nullptr);

  // Delta-aware recompile counters (observability; also mirrored onto the
  // model.recompile_* metrics).
  struct RecompileCounters {
    size_t subtrees_total = 0;
    size_t subtrees_reused = 0;  // memoized serializations carried over
  };

  // Incremental recompile over a DeltaRip graph (DESIGN.md §15): runs the
  // same pure pipeline as Compile, but carries the baseline catalog's
  // memoized shared-subtree serializations over wherever the new forest's
  // subtree is structurally identical (same ids, same shape, same node
  // content — node-count-preserving mutations keep ids stable, so renames
  // reuse every untouched subtree; splices that shift ids fall back to
  // recomputing, which exact comparison detects). `options` must equal the
  // baseline's modeling options or the carried strings would lie. The result
  // is byte-identical to Compile() over the same graph — only the cost
  // differs.
  static std::shared_ptr<const CompiledModel> RecompileDelta(
      const CompiledModel& baseline, const topo::NavGraph& graph,
      const ModelingOptions& options, const ripper::RipStats* rip,
      const ripper::ChecksumTable* checksums, RecompileCounters* counters = nullptr);

  // Fully materialized parts adopted by the binary-artifact loader
  // (model_artifact.cc, DESIGN.md §14). `catalog` must already point at
  // `dag` — FromLoadedParts re-runs no pipeline stage.
  struct LoadedParts {
    ModelingOptions options;
    ModelingStats stats;
    std::unique_ptr<topo::NavGraph> dag;
    std::unique_ptr<desc::TopologyCatalog> catalog;
    size_t usage_hint_tokens = 0;
    std::string static_prompt;
    size_t static_prompt_tokens = 0;
    ripper::ChecksumTable subtree_checksums;
  };
  static std::shared_ptr<const CompiledModel> FromLoadedParts(LoadedParts parts);

  const topo::NavGraph& dag() const { return *dag_; }
  const desc::TopologyCatalog& catalog() const { return *catalog_; }
  const ModelingStats& stats() const { return stats_; }
  // The options the model was compiled with; thin sessions default their
  // visit/interaction configs from here.
  const ModelingOptions& options() const { return options_; }
  size_t usage_hint_tokens() const { return usage_hint_tokens_; }

  // Per-subtree structural checksum table of the app build this model was
  // ripped from (empty for models compiled without one, e.g. loaded from a
  // pre-v2 artifact). The delta ripper diffs a live app against this.
  const ripper::ChecksumTable& subtree_checksums() const { return subtree_checksums_; }

  // The static prompt segment — usage hint + serialized core topology —
  // concatenated and token-counted once at compile time. Every session of
  // this model shares this single copy (DESIGN.md §12): per-session prompt
  // state is only the dynamic screen/data segment, so N concurrent sessions
  // of one app kind hold the static bytes exactly once.
  const std::string& static_prompt() const { return static_prompt_; }
  size_t static_prompt_tokens() const { return static_prompt_tokens_; }

  // Instruction header included in every prompt (counts toward DMI's token
  // overhead, §5.4).
  static const std::string& UsageHint();

  // Resolves an access chain given by human-readable names (a suffix of the
  // full chain, e.g. {"Font Color", "Blue"}): returns the target id plus the
  // entry references needed. Errors if no unique-enough match exists. Pure
  // query on the immutable forest/DAG — safe to call concurrently.
  support::Result<ResolvedTarget> ResolveTargetByNames(
      const std::vector<std::string>& names) const;

  CompiledModel(const CompiledModel&) = delete;
  CompiledModel& operator=(const CompiledModel&) = delete;

 private:
  CompiledModel() = default;

  ModelingOptions options_;
  ModelingStats stats_;
  // The catalog holds a raw pointer to the DAG, so the allocation must stay
  // put for the model's lifetime (hence unique_ptr, not a plain member).
  std::unique_ptr<topo::NavGraph> dag_;
  std::unique_ptr<desc::TopologyCatalog> catalog_;
  size_t usage_hint_tokens_ = 0;  // counted once at compile
  std::string static_prompt_;     // UsageHint() + catalog CoreText()
  size_t static_prompt_tokens_ = 0;
  ripper::ChecksumTable subtree_checksums_;
};

}  // namespace dmi

#endif  // SRC_DMI_COMPILED_MODEL_H_
