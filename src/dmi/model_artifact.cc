#include "src/dmi/model_artifact.h"

#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/gui/application.h"
#include "src/support/binio.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace dmi {
namespace {

// Section ids (values are part of the on-disk format — append, never renumber).
enum SectionId : uint32_t {
  kSectionDag = 1,
  kSectionForest = 2,
  kSectionCatalog = 3,
  kSectionPrompt = 4,
  kSectionStats = 5,
  kSectionOptions = 6,
  kSectionChecksums = 7,  // v2+: per-subtree structural checksum table
};

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionDag:
      return "dag";
    case kSectionForest:
      return "forest";
    case kSectionCatalog:
      return "catalog";
    case kSectionPrompt:
      return "prompt";
    case kSectionStats:
      return "stats";
    case kSectionOptions:
      return "options";
    case kSectionChecksums:
      return "checksums";
  }
  return nullptr;
}

uint64_t PayloadChecksum(const char* data, size_t n) {
  // The UiaStateChecksum machinery (DESIGN.md §10) in its bulk form: FNV-1a
  // over 8-byte words. Word loads are native-endian, which is exactly the
  // artifact's compatibility contract — the endianness tag is checked before
  // the checksum is ever computed.
  gsim::StateHash hash;
  hash.MixBytes(data, n);
  return hash.digest();
}

support::ErrorDetail ArtifactDetail(const std::string& path, std::string expected) {
  support::ErrorDetail d;
  d.control_id = path;
  d.required_pattern = std::move(expected);
  return d;
}

// ----- writer ----------------------------------------------------------------

void PutU8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI32(std::string& out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }

void PutF64(std::string& out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

void PutIntVec(std::string& out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) {
    PutI32(out, x);
  }
}

void PutTree(std::string& out, const topo::Tree& tree) {
  PutU32(out, static_cast<uint32_t>(tree.nodes.size()));
  for (const topo::TreeNode& node : tree.nodes) {
    PutI32(out, node.graph_index);
    PutI32(out, node.id);
    PutI32(out, node.parent);
    PutU8(out, node.is_reference ? 1 : 0);
    PutI32(out, node.ref_subtree);
    PutIntVec(out, node.children);
  }
}

// Appends one framed section: id, item count, body length, body.
void PutSection(std::string& payload, uint32_t id, uint64_t items, const std::string& body) {
  PutU32(payload, id);
  PutU64(payload, items);
  PutU64(payload, static_cast<uint64_t>(body.size()));
  payload.append(body);
}

std::string BuildDagSection(const topo::NavGraph& dag) {
  std::string body;
  body.reserve(dag.node_count() * 96);
  PutU32(body, static_cast<uint32_t>(dag.node_count()));
  for (size_t i = 0; i < dag.node_count(); ++i) {
    const topo::NodeInfo& info = dag.node(static_cast<int>(i));
    PutStr(body, info.control_id);
    PutStr(body, info.name);
    PutU32(body, static_cast<uint32_t>(info.type));
    PutStr(body, info.description);
    PutStr(body, info.automation_id);
  }
  for (size_t i = 0; i < dag.node_count(); ++i) {
    PutIntVec(body, dag.successors(static_cast<int>(i)));
  }
  return body;
}

std::string BuildForestSection(const topo::Forest& forest) {
  std::string body;
  body.reserve(forest.total_nodes() * 40);
  PutTree(body, forest.main());
  PutU32(body, static_cast<uint32_t>(forest.shared().size()));
  for (const topo::Tree& tree : forest.shared()) {
    PutTree(body, tree);
  }
  const std::vector<topo::ForestLocation>& locs = forest.LocationTable();
  PutU32(body, static_cast<uint32_t>(locs.size()));
  for (const topo::ForestLocation& loc : locs) {
    PutI32(body, loc.tree);
    PutI32(body, loc.node);
  }
  const std::vector<topo::ReferenceEntry>& refs = forest.AllReferences();
  PutU32(body, static_cast<uint32_t>(refs.size()));
  for (const topo::ReferenceEntry& ref : refs) {
    PutI32(body, ref.ref_id);
    PutI32(body, ref.subtree);
  }
  const std::vector<std::vector<int>>& by_subtree = forest.RefsBySubtree();
  PutU32(body, static_cast<uint32_t>(by_subtree.size()));
  for (const std::vector<int>& v : by_subtree) {
    PutIntVec(body, v);
  }
  PutI32(body, forest.max_id());
  return body;
}

std::string BuildCatalogSection(const desc::CatalogSnapshot& snap) {
  std::string body;
  body.reserve(snap.core_text.size() + snap.core_ids.size() * 4 + 256);
  PutIntVec(body, snap.core_ids);
  PutU64(body, snap.core_stats.kept);
  PutU64(body, snap.core_stats.elided);
  PutU64(body, snap.core_stats.elided_enumerations);
  PutStr(body, snap.core_text);
  PutU64(body, snap.core_tokens);
  PutU64(body, snap.full_tokens);
  PutU32(body, static_cast<uint32_t>(snap.subtree_texts.size()));
  for (const std::string& text : snap.subtree_texts) {
    PutStr(body, text);
  }
  return body;
}

std::string BuildPromptSection(const CompiledModel& model) {
  std::string body;
  body.reserve(model.static_prompt().size() + 32);
  PutU64(body, model.usage_hint_tokens());
  PutStr(body, model.static_prompt());
  PutU64(body, model.static_prompt_tokens());
  return body;
}

std::string BuildStatsSection(const ModelingStats& s) {
  std::string body;
  PutU64(body, s.raw.nodes);
  PutU64(body, s.raw.edges);
  PutU64(body, s.raw.merge_nodes);
  PutU64(body, s.raw.back_edges);
  PutI32(body, s.raw.max_depth);
  PutU64(body, s.back_edges_removed);
  PutU64(body, s.unreachable_dropped);
  PutU64(body, s.forest_nodes);
  PutU64(body, s.shared_subtrees);
  PutU64(body, s.references);
  PutU64(body, s.core_nodes);
  PutU64(body, s.core_tokens);
  PutU64(body, s.full_tokens);
  PutU64(body, s.rip.clicks);
  PutU64(body, s.rip.captures);
  PutU64(body, s.rip.explored);
  PutU64(body, s.rip.external_recoveries);
  PutU64(body, s.rip.window_events);
  PutU64(body, s.rip.contexts);
  PutU64(body, s.rip.capture_rebuilds);
  PutU64(body, s.rip.capture_cache_hits);
  PutU64(body, s.rip.indexed_lookups);
  PutF64(body, s.rip.simulated_ms);
  return body;
}

std::string BuildOptionsSection(const ModelingOptions& options) {
  std::string body;
  PutU8(body, options.augment_descriptions ? 1 : 0);
  PutU64(body, options.externalize_threshold);
  PutI32(body, options.prune.max_depth);
  PutU64(body, options.prune.enumeration_limit);
  PutU32(body, static_cast<uint32_t>(options.prune.manual_exclude_names.size()));
  for (const std::string& name : options.prune.manual_exclude_names) {
    PutStr(body, name);
  }
  PutU64(body, options.describe.max_description_tokens);
  PutU8(body, options.describe.include_descriptions ? 1 : 0);
  return body;
}

// v2+: the per-subtree structural checksum table the delta ripper diffs a
// live app against. Entries are written in the table's canonical (sorted-
// by-key) order so identical tables serialize byte-identically.
std::string BuildChecksumsSection(const ripper::ChecksumTable& table) {
  std::string body;
  body.reserve(table.size() * 48 + 8);
  PutU32(body, static_cast<uint32_t>(table.size()));
  for (const ripper::SubtreeChecksum& entry : table) {
    PutStr(body, entry.key);
    PutU64(body, entry.checksum);
  }
  return body;
}

// ----- reader ----------------------------------------------------------------

// Bounds-checked cursor over a byte span. Every overrun is a typed
// "truncated artifact" error carrying the offending path — a short file can
// never parse as a shorter-but-valid model.
class Reader {
 public:
  Reader(const char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  const char* cursor() const { return data_ + pos_; }

  support::Status Skip(size_t n) {
    if (remaining() < n) {
      return Truncated(n);
    }
    pos_ += n;
    return support::Status::Ok();
  }

  support::Status ReadU8(uint8_t* out) {
    if (remaining() < 1) {
      return Truncated(1);
    }
    *out = static_cast<uint8_t>(data_[pos_++]);
    return support::Status::Ok();
  }

  support::Status ReadU32(uint32_t* out) {
    if (remaining() < sizeof(*out)) {
      return Truncated(sizeof(*out));
    }
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return support::Status::Ok();
  }

  support::Status ReadU64(uint64_t* out) {
    if (remaining() < sizeof(*out)) {
      return Truncated(sizeof(*out));
    }
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return support::Status::Ok();
  }

  support::Status ReadI32(int32_t* out) {
    uint32_t raw = 0;
    support::Status st = ReadU32(&raw);
    *out = static_cast<int32_t>(raw);
    return st;
  }

  support::Status ReadSize(size_t* out) {
    uint64_t raw = 0;
    support::Status st = ReadU64(&raw);
    *out = static_cast<size_t>(raw);
    return st;
  }

  support::Status ReadF64(double* out) {
    uint64_t bits = 0;
    support::Status st = ReadU64(&bits);
    if (st.ok()) {
      std::memcpy(out, &bits, sizeof(*out));
    }
    return st;
  }

  support::Status ReadStr(std::string* out) {
    uint32_t len = 0;
    if (support::Status st = ReadU32(&len); !st.ok()) {
      return st;
    }
    if (remaining() < len) {
      return Truncated(len);
    }
    out->assign(data_ + pos_, len);
    pos_ += len;
    return support::Status::Ok();
  }

  support::Status ReadIntVec(std::vector<int>* out) {
    static_assert(sizeof(int) == 4, "artifact int vectors are packed i32");
    uint32_t count = 0;
    if (support::Status st = ReadU32(&count); !st.ok()) {
      return st;
    }
    // Each element costs 4 bytes; reject counts the span cannot hold before
    // resizing (a corrupt count must not become a giant allocation).
    if (remaining() < static_cast<size_t>(count) * 4) {
      return Truncated(static_cast<size_t>(count) * 4);
    }
    out->resize(count);
    if (count > 0) {
      std::memcpy(out->data(), data_ + pos_, static_cast<size_t>(count) * 4);
      pos_ += static_cast<size_t>(count) * 4;
    }
    return support::Status::Ok();
  }

  support::Status ReadTree(topo::Tree* out) {
    uint32_t count = 0;
    if (support::Status st = ReadU32(&count); !st.ok()) {
      return st;
    }
    // 17 bytes fixed per node + its (bounds-checked) child vector.
    if (remaining() < static_cast<size_t>(count) * 17) {
      return Truncated(static_cast<size_t>(count) * 17);
    }
    out->nodes.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      topo::TreeNode& node = out->nodes[i];
      uint8_t is_ref = 0;
      if (support::Status st = ReadI32(&node.graph_index); !st.ok()) {
        return st;
      }
      (void)ReadI32(&node.id);
      (void)ReadI32(&node.parent);
      if (support::Status st = ReadU8(&is_ref); !st.ok()) {
        return st;
      }
      node.is_reference = is_ref != 0;
      if (support::Status st = ReadI32(&node.ref_subtree); !st.ok()) {
        return st;
      }
      if (support::Status st = ReadIntVec(&node.children); !st.ok()) {
        return st;
      }
    }
    return support::Status::Ok();
  }

  support::Status Truncated(size_t wanted) const {
    return support::InvalidArgumentError(
               "truncated artifact '" + path_ + "': need " + std::to_string(wanted) +
               " bytes at offset " + std::to_string(pos_) + ", have " +
               std::to_string(remaining()))
        .WithDetail(ArtifactDetail(path_, support::Format("%zu bytes", wanted)));
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& path_;
};

struct Header {
  ArtifactMeta meta;
  uint32_t version = 0;  // parsed format version (within the accepted range)
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  size_t payload_offset = 0;  // into the file bytes
};

// Validates magic/endianness/version and reads the meta + payload framing.
// Shared by the loader and the inspector so both reject corruption the same
// way.
support::Status ParseHeader(const std::string& bytes, const std::string& path, Header* out) {
  Reader reader(bytes.data(), bytes.size(), path);
  if (bytes.size() < sizeof(kArtifactMagic)) {
    return reader.Truncated(sizeof(kArtifactMagic));
  }
  if (std::memcmp(bytes.data(), kArtifactMagic, sizeof(kArtifactMagic)) != 0) {
    return support::InvalidArgumentError("not a DMI model artifact: '" + path +
                                         "' (bad magic)")
        .WithDetail(ArtifactDetail(path, "magic=DMIMODL"));
  }
  (void)reader.Skip(sizeof(kArtifactMagic));
  uint32_t endian_tag = 0;
  if (support::Status st = reader.ReadU32(&endian_tag); !st.ok()) {
    return st;
  }
  if (endian_tag != kArtifactEndianTag) {
    // The byte-swapped tag means a valid artifact from a foreign-endian
    // producer; anything else is corruption — but both are unreadable here,
    // and the distinct code lets tooling tell the user to re-emit rather
    // than suspect disk rot.
    return support::FailedPreconditionError(
               support::Format("artifact '%s' written with incompatible endianness "
                               "(tag 0x%08x, want 0x%08x)",
                               path.c_str(), endian_tag, kArtifactEndianTag))
        .WithDetail(ArtifactDetail(path, "endian=0x01020304"));
  }
  uint32_t version = 0;
  if (support::Status st = reader.ReadU32(&version); !st.ok()) {
    return st;
  }
  if (version < kArtifactMinFormatVersion || version > kArtifactFormatVersion) {
    return support::UnimplementedError(
               support::Format("artifact '%s' has unsupported format version %u "
                               "(reader supports %u..%u)",
                               path.c_str(), version, kArtifactMinFormatVersion,
                               kArtifactFormatVersion))
        .WithDetail(ArtifactDetail(path, support::Format("version=%u", kArtifactFormatVersion)));
  }
  out->version = version;
  if (support::Status st = reader.ReadStr(&out->meta.app_kind); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadStr(&out->meta.app_version); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadU64(&out->payload_len); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadU64(&out->checksum); !st.ok()) {
    return st;
  }
  out->payload_offset = reader.pos();
  const uint64_t available = bytes.size() - out->payload_offset;
  if (available < out->payload_len) {
    return support::InvalidArgumentError(
               support::Format("truncated artifact '%s': payload has %llu of %llu bytes",
                               path.c_str(), static_cast<unsigned long long>(available),
                               static_cast<unsigned long long>(out->payload_len)))
        .WithDetail(
            ArtifactDetail(path, support::Format("payload=%llu bytes",
                                                 static_cast<unsigned long long>(out->payload_len))));
  }
  if (available > out->payload_len) {
    return support::InvalidArgumentError(
               support::Format("artifact '%s' has %llu trailing bytes after the payload",
                               path.c_str(),
                               static_cast<unsigned long long>(available - out->payload_len)))
        .WithDetail(ArtifactDetail(path, "no trailing bytes"));
  }
  return support::Status::Ok();
}

support::Status VerifyChecksum(const std::string& bytes, const Header& header,
                               const std::string& path) {
  const uint64_t computed =
      PayloadChecksum(bytes.data() + header.payload_offset, header.payload_len);
  if (computed != header.checksum) {
    return support::InternalError(
               support::Format("artifact '%s' checksum mismatch: stored %016llx, "
                               "computed %016llx",
                               path.c_str(), static_cast<unsigned long long>(header.checksum),
                               static_cast<unsigned long long>(computed)))
        .WithDetail(ArtifactDetail(
            path, support::Format("fnv1a=%016llx",
                                  static_cast<unsigned long long>(header.checksum))));
  }
  return support::Status::Ok();
}

support::Status ParseDagSection(Reader& reader, const std::string& path,
                                std::unique_ptr<topo::NavGraph>* out) {
  uint32_t count = 0;
  if (support::Status st = reader.ReadU32(&count); !st.ok()) {
    return st;
  }
  std::vector<topo::NodeInfo> nodes(count);
  // Node-table hot loop: four length-prefixed strings plus a type word per
  // node, parsed from raw cursors with one bounds check per field. This is
  // the single largest cost of a cold load, so it skips the per-call Reader
  // accounting; the consumed span is committed back to the reader at the
  // end (or before surfacing a truncation, so the error offset is right).
  const char* base = reader.cursor();
  const char* p = base;
  const char* end = base + reader.remaining();
  size_t want = 0;
  auto read_str = [&](std::string* dst) {
    if (end - p < 4) {
      want = 4;
      return false;
    }
    uint32_t len = 0;
    std::memcpy(&len, p, 4);
    p += 4;
    if (static_cast<size_t>(end - p) < len) {
      want = len;
      return false;
    }
    dst->assign(p, len);
    p += len;
    return true;
  };
  for (uint32_t i = 0; i < count; ++i) {
    topo::NodeInfo& info = nodes[i];
    uint32_t type = 0;
    bool ok = read_str(&info.control_id) && read_str(&info.name);
    if (ok) {
      if (end - p < 4) {
        want = 4;
        ok = false;
      } else {
        std::memcpy(&type, p, 4);
        p += 4;
      }
    }
    if (ok && type >= static_cast<uint32_t>(uia::kNumControlTypes)) {
      return support::InvalidArgumentError(
          support::Format("artifact '%s': node %u has invalid control type %u", path.c_str(),
                          i, type));
    }
    info.type = static_cast<uia::ControlType>(type);
    ok = ok && read_str(&info.description) && read_str(&info.automation_id);
    if (!ok) {
      (void)reader.Skip(static_cast<size_t>(p - base));
      return reader.Truncated(want);
    }
  }
  (void)reader.Skip(static_cast<size_t>(p - base));
  std::vector<std::vector<int>> adjacency(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (support::Status st = reader.ReadIntVec(&adjacency[i]); !st.ok()) {
      return st;
    }
  }
  support::Result<topo::NavGraph> graph =
      topo::NavGraph::FromParts(std::move(nodes), std::move(adjacency));
  if (!graph.ok()) {
    return graph.status();
  }
  *out = std::make_unique<topo::NavGraph>(std::move(*graph));
  return support::Status::Ok();
}

support::Status ParseForestSection(Reader& reader, topo::ForestParts* parts) {
  if (support::Status st = reader.ReadTree(&parts->main); !st.ok()) {
    return st;
  }
  uint32_t shared_count = 0;
  if (support::Status st = reader.ReadU32(&shared_count); !st.ok()) {
    return st;
  }
  parts->shared.resize(shared_count);
  for (uint32_t s = 0; s < shared_count; ++s) {
    if (support::Status st = reader.ReadTree(&parts->shared[s]); !st.ok()) {
      return st;
    }
  }
  // ForestLocation and ReferenceEntry are pairs of i32 — bulk-copy both
  // tables (same layout the writer emitted field-by-field).
  static_assert(sizeof(topo::ForestLocation) == 8 && sizeof(topo::ReferenceEntry) == 8,
                "artifact tables are packed i32 pairs");
  uint32_t loc_count = 0;
  if (support::Status st = reader.ReadU32(&loc_count); !st.ok()) {
    return st;
  }
  if (reader.remaining() < static_cast<size_t>(loc_count) * 8) {
    return reader.Truncated(static_cast<size_t>(loc_count) * 8);
  }
  parts->loc_by_id.resize(loc_count);
  if (loc_count > 0) {
    std::memcpy(parts->loc_by_id.data(), reader.cursor(), static_cast<size_t>(loc_count) * 8);
    (void)reader.Skip(static_cast<size_t>(loc_count) * 8);
  }
  uint32_t ref_count = 0;
  if (support::Status st = reader.ReadU32(&ref_count); !st.ok()) {
    return st;
  }
  if (reader.remaining() < static_cast<size_t>(ref_count) * 8) {
    return reader.Truncated(static_cast<size_t>(ref_count) * 8);
  }
  parts->all_refs.resize(ref_count);
  if (ref_count > 0) {
    std::memcpy(parts->all_refs.data(), reader.cursor(), static_cast<size_t>(ref_count) * 8);
    (void)reader.Skip(static_cast<size_t>(ref_count) * 8);
  }
  uint32_t by_subtree_count = 0;
  if (support::Status st = reader.ReadU32(&by_subtree_count); !st.ok()) {
    return st;
  }
  if (reader.remaining() < static_cast<size_t>(by_subtree_count) * 4) {
    return reader.Truncated(static_cast<size_t>(by_subtree_count) * 4);
  }
  parts->refs_by_subtree.resize(by_subtree_count);
  for (uint32_t i = 0; i < by_subtree_count; ++i) {
    if (support::Status st = reader.ReadIntVec(&parts->refs_by_subtree[i]); !st.ok()) {
      return st;
    }
  }
  int32_t max_id = 0;
  if (support::Status st = reader.ReadI32(&max_id); !st.ok()) {
    return st;
  }
  parts->max_id = max_id;
  return support::Status::Ok();
}

support::Status ParseCatalogSection(Reader& reader, desc::CatalogSnapshot* snap) {
  if (support::Status st = reader.ReadIntVec(&snap->core_ids); !st.ok()) {
    return st;
  }
  (void)reader.ReadSize(&snap->core_stats.kept);
  (void)reader.ReadSize(&snap->core_stats.elided);
  if (support::Status st = reader.ReadSize(&snap->core_stats.elided_enumerations); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadStr(&snap->core_text); !st.ok()) {
    return st;
  }
  (void)reader.ReadSize(&snap->core_tokens);
  if (support::Status st = reader.ReadSize(&snap->full_tokens); !st.ok()) {
    return st;
  }
  uint32_t subtree_count = 0;
  if (support::Status st = reader.ReadU32(&subtree_count); !st.ok()) {
    return st;
  }
  if (reader.remaining() < static_cast<size_t>(subtree_count) * 4) {
    return reader.Truncated(static_cast<size_t>(subtree_count) * 4);
  }
  snap->subtree_texts.resize(subtree_count);
  for (uint32_t s = 0; s < subtree_count; ++s) {
    if (support::Status st = reader.ReadStr(&snap->subtree_texts[s]); !st.ok()) {
      return st;
    }
  }
  return support::Status::Ok();
}

support::Status ParseStatsSection(Reader& reader, ModelingStats* s) {
  (void)reader.ReadSize(&s->raw.nodes);
  (void)reader.ReadSize(&s->raw.edges);
  (void)reader.ReadSize(&s->raw.merge_nodes);
  (void)reader.ReadSize(&s->raw.back_edges);
  if (support::Status st = reader.ReadI32(&s->raw.max_depth); !st.ok()) {
    return st;
  }
  (void)reader.ReadSize(&s->back_edges_removed);
  (void)reader.ReadSize(&s->unreachable_dropped);
  (void)reader.ReadSize(&s->forest_nodes);
  (void)reader.ReadSize(&s->shared_subtrees);
  (void)reader.ReadSize(&s->references);
  (void)reader.ReadSize(&s->core_nodes);
  (void)reader.ReadSize(&s->core_tokens);
  (void)reader.ReadSize(&s->full_tokens);
  (void)reader.ReadU64(&s->rip.clicks);
  (void)reader.ReadU64(&s->rip.captures);
  (void)reader.ReadU64(&s->rip.explored);
  (void)reader.ReadU64(&s->rip.external_recoveries);
  (void)reader.ReadU64(&s->rip.window_events);
  (void)reader.ReadU64(&s->rip.contexts);
  (void)reader.ReadU64(&s->rip.capture_rebuilds);
  (void)reader.ReadU64(&s->rip.capture_cache_hits);
  (void)reader.ReadU64(&s->rip.indexed_lookups);
  return reader.ReadF64(&s->rip.simulated_ms);
}

support::Status ParseOptionsSection(Reader& reader, ModelingOptions* options) {
  uint8_t augment = 0;
  if (support::Status st = reader.ReadU8(&augment); !st.ok()) {
    return st;
  }
  options->augment_descriptions = augment != 0;
  if (support::Status st = reader.ReadU64(&options->externalize_threshold); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadI32(&options->prune.max_depth); !st.ok()) {
    return st;
  }
  if (support::Status st = reader.ReadSize(&options->prune.enumeration_limit); !st.ok()) {
    return st;
  }
  uint32_t exclude_count = 0;
  if (support::Status st = reader.ReadU32(&exclude_count); !st.ok()) {
    return st;
  }
  options->prune.manual_exclude_names.clear();
  for (uint32_t i = 0; i < exclude_count; ++i) {
    std::string name;
    if (support::Status st = reader.ReadStr(&name); !st.ok()) {
      return st;
    }
    options->prune.manual_exclude_names.insert(std::move(name));
  }
  if (support::Status st = reader.ReadSize(&options->describe.max_description_tokens);
      !st.ok()) {
    return st;
  }
  uint8_t include_desc = 0;
  if (support::Status st = reader.ReadU8(&include_desc); !st.ok()) {
    return st;
  }
  options->describe.include_descriptions = include_desc != 0;
  return support::Status::Ok();
}

support::Status ParseChecksumsSection(Reader& reader, ripper::ChecksumTable* table) {
  uint32_t count = 0;
  if (support::Status st = reader.ReadU32(&count); !st.ok()) {
    return st;
  }
  table->clear();
  table->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ripper::SubtreeChecksum entry;
    if (support::Status st = reader.ReadStr(&entry.key); !st.ok()) {
      return st;
    }
    if (support::Status st = reader.ReadU64(&entry.checksum); !st.ok()) {
      return st;
    }
    table->push_back(std::move(entry));
  }
  return support::Status::Ok();
}

}  // namespace

support::Status SaveModelArtifact(const CompiledModel& model, const ArtifactMeta& meta,
                                  const std::string& path) {
  support::TraceSpan span("model.artifact_save", "model");
  const desc::CatalogSnapshot snapshot = model.catalog().Snapshot();

  std::string payload;
  payload.reserve(model.dag().node_count() * 128 + model.catalog().forest().total_nodes() * 40 +
                  snapshot.core_text.size() + model.static_prompt().size() + 4096);
  {
    const std::string body = BuildDagSection(model.dag());
    PutSection(payload, kSectionDag, model.dag().node_count(), body);
  }
  {
    const std::string body = BuildForestSection(model.catalog().forest());
    PutSection(payload, kSectionForest, model.catalog().forest().total_nodes(), body);
  }
  {
    const std::string body = BuildCatalogSection(snapshot);
    PutSection(payload, kSectionCatalog, snapshot.core_ids.size(), body);
  }
  PutSection(payload, kSectionPrompt, 1, BuildPromptSection(model));
  PutSection(payload, kSectionStats, 1, BuildStatsSection(model.stats()));
  PutSection(payload, kSectionOptions, 1, BuildOptionsSection(model.options()));
  // Written even when empty (a model compiled without a table): readers then
  // load an empty table and the delta ripper full-falls-back, same as v1.
  PutSection(payload, kSectionChecksums, model.subtree_checksums().size(),
             BuildChecksumsSection(model.subtree_checksums()));

  std::string bytes;
  bytes.reserve(payload.size() + 64 + meta.app_kind.size() + meta.app_version.size());
  bytes.append(kArtifactMagic, sizeof(kArtifactMagic));
  PutU32(bytes, kArtifactEndianTag);
  PutU32(bytes, kArtifactFormatVersion);
  PutStr(bytes, meta.app_kind);
  PutStr(bytes, meta.app_version);
  PutU64(bytes, static_cast<uint64_t>(payload.size()));
  PutU64(bytes, PayloadChecksum(payload.data(), payload.size()));
  bytes.append(payload);

  support::CountMetric("model.artifact_saves");
  support::CountMetric("model.artifact_bytes", bytes.size());
  span.AddArg("bytes", static_cast<int64_t>(bytes.size()));
  // A model store is usually a directory that doesn't exist yet (fresh
  // `--model-dir`, `--out cache/...`); create it so save means save. A
  // failure here surfaces as the typed WriteFileBytes error below.
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
  }
  return support::WriteFileBytes(path, bytes);
}

support::Result<LoadedModelArtifact> LoadModelArtifact(const std::string& path,
                                                       const ModelingOptions& runtime_options,
                                                       const ArtifactMeta* expect) {
  support::TraceSpan span("model.artifact_load", "model");
  const int64_t load_start_us = support::TraceNowUs();
  support::Result<std::string> bytes = support::ReadFileBytes(path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  Header header;
  if (support::Status st = ParseHeader(*bytes, path, &header); !st.ok()) {
    return st;
  }
  if (expect != nullptr && (header.meta.app_kind != expect->app_kind ||
                            header.meta.app_version != expect->app_version)) {
    return support::FailedPreconditionError(
               "artifact '" + path + "' is for (" + header.meta.app_kind + ", " +
               header.meta.app_version + "), expected (" + expect->app_kind + ", " +
               expect->app_version + ")")
        .WithDetail(ArtifactDetail(path, expect->app_kind + "-" + expect->app_version));
  }
  const char* payload = bytes->data() + header.payload_offset;
  const size_t payload_len = header.payload_len;

  // Scan the section table first — framing only, no body parsing. With the
  // spans known up front, the DAG section (by far the largest body) can
  // parse on a worker thread while this thread checksums the payload and
  // parses the remaining sections; all of it reads the same immutable byte
  // buffer.
  struct SectionSpan {
    uint32_t id = 0;
    size_t offset = 0;
    size_t len = 0;
  };
  std::vector<SectionSpan> spans;
  {
    Reader scan(payload, payload_len, path);
    support::Status scan_st;
    while (scan_st.ok() && scan.remaining() > 0) {
      SectionSpan s;
      uint64_t items = 0;
      size_t body_len = 0;
      scan_st = scan.ReadU32(&s.id);
      if (scan_st.ok()) {
        scan_st = scan.ReadU64(&items);
      }
      if (scan_st.ok()) {
        scan_st = scan.ReadSize(&body_len);
      }
      if (!scan_st.ok()) {
        break;
      }
      if (scan.remaining() < body_len) {
        scan_st = scan.Truncated(body_len);
        break;
      }
      s.offset = scan.pos();
      s.len = body_len;
      (void)scan.Skip(body_len);
      spans.push_back(s);
    }
    if (!scan_st.ok()) {
      // A mangled section table usually *is* flipped bytes; report the
      // checksum verdict first so corruption reads as corruption, not as a
      // structural bug in the writer.
      if (support::Status cst = VerifyChecksum(*bytes, header, path); !cst.ok()) {
        return cst;
      }
      return scan_st;
    }
  }

  std::unique_ptr<topo::NavGraph> dag;
  topo::ForestParts forest_parts;
  desc::CatalogSnapshot snapshot;
  CompiledModel::LoadedParts parts;
  parts.options = runtime_options;

  // Parses one section body from its slice, enforcing the declared length.
  auto parse_one = [&](const SectionSpan& s) -> support::Status {
    Reader reader(payload + s.offset, s.len, path);
    support::Status st;
    switch (s.id) {
      case kSectionDag:
        st = ParseDagSection(reader, path, &dag);
        break;
      case kSectionForest:
        st = ParseForestSection(reader, &forest_parts);
        break;
      case kSectionCatalog:
        st = ParseCatalogSection(reader, &snapshot);
        break;
      case kSectionPrompt:
        st = reader.ReadSize(&parts.usage_hint_tokens);
        if (st.ok()) {
          st = reader.ReadStr(&parts.static_prompt);
        }
        if (st.ok()) {
          st = reader.ReadSize(&parts.static_prompt_tokens);
        }
        break;
      case kSectionStats:
        st = ParseStatsSection(reader, &parts.stats);
        break;
      case kSectionOptions:
        st = ParseOptionsSection(reader, &parts.options);
        break;
      case kSectionChecksums:
        st = ParseChecksumsSection(reader, &parts.subtree_checksums);
        break;
      default:
        // Unknown section from an additive producer: skip (forward compat
        // within a format version; the checksum already vouched for the
        // bytes).
        return support::Status::Ok();
    }
    if (!st.ok()) {
      return st;
    }
    if (reader.remaining() != 0) {
      return support::InvalidArgumentError(
          support::Format("artifact '%s': section %s body length mismatch (declared %zu, "
                          "parsed %zu)",
                          path.c_str(), SectionName(s.id) ? SectionName(s.id) : "?", s.len,
                          s.len - reader.remaining()));
    }
    return support::Status::Ok();
  };

  // The DAG body dominates parse time. With a spare core, hand it to a
  // worker thread and overlap it with the checksum and the other sections
  // (the worker writes only `dag`; everything shared is read-only payload).
  // On a single-CPU host the two threads would just timeshare the core —
  // stay sequential there, which also keeps checksum-before-parse ordering
  // for free.
  const SectionSpan* dag_span = nullptr;
  for (const SectionSpan& s : spans) {
    if (s.id == kSectionDag) {
      dag_span = &s;
      break;
    }
  }
  const bool overlap_dag = dag_span != nullptr && std::thread::hardware_concurrency() > 1;
  support::Status dag_st;
  std::thread dag_worker;
  if (overlap_dag) {
    dag_worker = std::thread([&] { dag_st = parse_one(*dag_span); });
  }
  support::Status checksum_st = VerifyChecksum(*bytes, header, path);
  support::Status other_st;
  if (checksum_st.ok()) {
    for (const SectionSpan& s : spans) {
      if (s.id == kSectionDag) {
        continue;  // handled by the worker or below (first span wins)
      }
      other_st = parse_one(s);
      if (!other_st.ok()) {
        break;
      }
    }
  }
  if (dag_worker.joinable()) {
    dag_worker.join();
  } else if (checksum_st.ok() && other_st.ok() && dag_span != nullptr) {
    dag_st = parse_one(*dag_span);
  }
  // Corruption taxonomy: a checksum mismatch outranks any parse error — the
  // bytes are bad, not the structure.
  if (!checksum_st.ok()) {
    return checksum_st;
  }
  if (!other_st.ok()) {
    return other_st;
  }
  if (!dag_st.ok()) {
    return dag_st;
  }

  bool have[7] = {false, false, false, false, false, false, false};
  for (const SectionSpan& s : spans) {
    if (s.id >= 1 && s.id <= 6) {
      have[s.id] = true;
    }
  }
  for (uint32_t id = 1; id <= 6; ++id) {
    if (!have[id]) {
      return support::InvalidArgumentError("artifact '" + path + "' is missing the '" +
                                           SectionName(id) + "' section")
          .WithDetail(ArtifactDetail(path, std::string("section=") + SectionName(id)));
    }
  }

  // Index fixup: rebuild the forest and catalog around the loaded DAG.
  support::Result<topo::Forest> forest = topo::Forest::FromParts(std::move(forest_parts));
  if (!forest.ok()) {
    return forest.status();
  }
  parts.dag = std::move(dag);
  parts.catalog = desc::TopologyCatalog::FromSnapshot(
      parts.dag.get(), std::move(*forest), parts.options.describe, std::move(snapshot));

  LoadedModelArtifact loaded;
  loaded.meta = header.meta;
  loaded.model = CompiledModel::FromLoadedParts(std::move(parts));
  support::ObserveMetric("model.artifact_load_ms",
                         static_cast<double>(support::TraceNowUs() - load_start_us) / 1000.0);
  span.AddArg("bytes", static_cast<int64_t>(bytes->size()));
  return loaded;
}

support::Result<ArtifactInfo> InspectModelArtifact(const std::string& path) {
  support::Result<std::string> bytes = support::ReadFileBytes(path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  Header header;
  if (support::Status st = ParseHeader(*bytes, path, &header); !st.ok()) {
    return st;
  }
  ArtifactInfo info;
  info.format_version = header.version;
  info.meta = header.meta;
  info.payload_bytes = header.payload_len;
  info.stored_checksum = header.checksum;
  info.checksum_ok = VerifyChecksum(*bytes, header, path).ok();
  Reader reader(bytes->data() + header.payload_offset, header.payload_len, path);
  while (reader.remaining() > 0) {
    uint32_t id = 0;
    ArtifactSectionInfo section;
    if (support::Status st = reader.ReadU32(&id); !st.ok()) {
      return st;
    }
    if (support::Status st = reader.ReadU64(&section.items); !st.ok()) {
      return st;
    }
    if (support::Status st = reader.ReadU64(&section.bytes); !st.ok()) {
      return st;
    }
    if (support::Status st = reader.Skip(section.bytes); !st.ok()) {
      return st;
    }
    section.name = SectionName(id) ? SectionName(id)
                                   : support::Format("unknown(%u)", id);
    info.sections.push_back(std::move(section));
  }
  return info;
}

}  // namespace dmi
