#include "src/dmi/visit.h"

#include <algorithm>

#include "src/json/json.h"
#include "src/ripper/identifier.h"
#include "src/support/flight_recorder.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/text/similarity.h"
#include "src/uia/tree.h"

namespace dmi {
namespace {

// Ancestor-path token overlap in [0,1], a weak structural signal that
// complements name similarity during fuzzy matching.
double AncestorOverlap(const std::string& a, const std::string& b) {
  return textutil::TokenSetRatio(a, b);
}

const char* CommandKindName(VisitCommand::Kind kind) {
  switch (kind) {
    case VisitCommand::Kind::kAccess:
      return "access";
    case VisitCommand::Kind::kAccessInput:
      return "access_input";
    case VisitCommand::Kind::kShortcut:
      return "shortcut";
    case VisitCommand::Kind::kFurtherQuery:
      return "further_query";
  }
  return "unknown";
}

jsonv::Value StatusToJson(const support::Status& status) {
  jsonv::Object obj;
  obj["code"] = support::StatusCodeName(status.code());
  obj["message"] = status.message();
  if (status.has_detail()) {
    const support::ErrorDetail& d = status.detail();
    jsonv::Object detail;
    detail["control_id"] = d.control_id;
    detail["control_name"] = d.control_name;
    detail["required_pattern"] = d.required_pattern;
    detail["retryable"] = d.retryable;
    detail["attempts"] = d.attempts;
    detail["backoff_ticks"] = static_cast<int64_t>(d.backoff_ticks);
    obj["error_detail"] = std::move(detail);
  }
  return jsonv::Value(std::move(obj));
}

// Rebuilds a Status (code, message, fresh detail) so detail fields can be
// augmented without mutating the original's shared payload.
support::Status WithAugmentedDetail(const support::Status& status,
                                    support::ErrorDetail detail) {
  return support::Status(status.code(), status.message()).WithDetail(std::move(detail));
}

}  // namespace

std::string VisitReport::Render() const {
  std::string out;
  if (was_further_query) {
    return further_query_text;
  }
  for (const CommandReport& cr : commands) {
    out += cr.command.ToString();
    if (cr.filtered) {
      out += " -> filtered (navigation node; DMI handles navigation)";
    } else {
      out += " -> " + cr.status.ToString();
      if (!cr.detail.empty()) {
        out += " (" + cr.detail + ")";
      }
    }
    out += "\n";
  }
  return out;
}

std::string VisitReport::RenderJson() const {
  jsonv::Object root;
  root["was_further_query"] = was_further_query;
  if (was_further_query) {
    root["further_query_text"] = further_query_text;
  }
  root["overall"] = StatusToJson(overall);
  root["filtered_count"] = static_cast<int64_t>(filtered_count);
  root["ui_actions"] = static_cast<int64_t>(ui_actions);
  jsonv::Array cmds;
  for (const CommandReport& cr : commands) {
    jsonv::Object c;
    c["command"] = cr.command.ToString();
    c["kind"] = CommandKindName(cr.command.kind);
    c["filtered"] = cr.filtered;
    c["status"] = StatusToJson(cr.status);
    if (!cr.detail.empty()) {
      c["detail"] = cr.detail;
    }
    cmds.push_back(jsonv::Value(std::move(c)));
  }
  root["commands"] = std::move(cmds);
  return jsonv::Value(std::move(root)).Dump();
}

VisitExecutor::VisitExecutor(gsim::Application& app, const desc::TopologyCatalog& catalog,
                             VisitConfig config)
    : app_(&app), catalog_(&catalog), config_(config), index_(app) {}

VisitReport VisitExecutor::Execute(const std::string& json_commands) {
  auto parsed = ParseVisitCommands(json_commands);
  if (!parsed.ok()) {
    VisitReport report;
    report.overall = parsed.status();
    return report;
  }
  return ExecuteParsed(std::move(*parsed));
}

gsim::Control* VisitExecutor::LocateControl(const topo::NodeInfo& info) {
  // The executor fetches the topmost valid window and all descendant
  // controls (§4.3) — lower windows are blocked while a dialog is up.
  gsim::Window* top = app_->TopWindow();
  if (top == nullptr) {
    return nullptr;
  }
  // Registry references resolved once; the increments are relaxed adds.
  static support::Counter& fast_path_hits =
      support::MetricsRegistry::Global().GetCounter("visit.locate_fast_path");
  static support::Counter& fallback_walks =
      support::MetricsRegistry::Global().GetCounter("visit.locate_fallback_walks");
  if (config_.enable_visible_index) {
    // O(1) exact-id fast path; the window filter reproduces the legacy
    // "search only the topmost valid window" scope (controls carry their
    // containing window, including adopted popups).
    gsim::Control* exact = index_.FindByIdInWindow(info.control_id, top);
    if (exact != nullptr) {
      fast_path_hits.Increment();
      return exact;
    }
    if (!config_.enable_fuzzy_match) {
      return nullptr;  // no exact match and no fuzzy fallback: nothing to find
    }
    // Fall through to the walk below for fuzzy scoring (its exact check is
    // now guaranteed not to fire, so behaviour matches the legacy path).
  }
  fallback_walks.Increment();
  // Exact identifier match first, best fuzzy candidate as fallback.
  gsim::Control* exact = nullptr;
  gsim::Control* best_fuzzy = nullptr;
  double best_score = 0.0;
  uia::Walk(top->root(), [&](uia::Element& e, int) {
    if (exact != nullptr) {
      return false;
    }
    if (e.IsOffscreen()) {
      return false;
    }
    if (e.RuntimeId() == 0) {
      return true;
    }
    if (ripper::SynthesizeControlId(e) == info.control_id) {
      exact = static_cast<gsim::Control*>(&e);
      return false;
    }
    if (config_.enable_fuzzy_match && e.Type() == info.type) {
      // Combine name similarity (dominant) and ancestor-path overlap.
      const ripper::ParsedControlId parsed = ripper::ParseControlId(info.control_id);
      double score = 0.8 * textutil::DecorationAwareScore(info.name, e.Name()) +
                     0.2 * AncestorOverlap(uia::AncestorPath(e), parsed.ancestor_path);
      if (score > best_score) {
        best_score = score;
        best_fuzzy = static_cast<gsim::Control*>(&e);
      }
    }
    return true;
  });
  if (exact != nullptr) {
    return exact;
  }
  if (best_fuzzy != nullptr && best_score >= config_.fuzzy_threshold) {
    return best_fuzzy;
  }
  return nullptr;
}

support::RetryPolicy VisitExecutor::EffectiveRetryPolicy() const {
  if (!config_.retry.unset()) {
    return config_.retry;
  }
  // Legacy knobs: `max_retries` extra attempts, one tick apart — reproduces
  // the exact Tick/Locate/Click sequence of the pre-RetryPolicy loop.
  return support::RetryPolicy::FixedTicks(config_.enable_retry ? config_.max_retries : 0);
}

gsim::Control* VisitExecutor::LocateControlWithRetry(const topo::NodeInfo& info,
                                                     std::string& detail) {
  gsim::Control* control = LocateControl(info);
  ++cmd_attempts_;
  if (control != nullptr) {
    return control;
  }
  // Deterministically expected controls can load slowly; retry under the
  // typed schedule, advancing the application's logical clock by the backoff
  // (paper §3.4 failure retry).
  const support::RetryPolicy policy = EffectiveRetryPolicy();
  int attempt = 1;
  while (control == nullptr && policy.ShouldRetry(attempt) && !DeadlineExpired()) {
    support::CountMetric("visit.locate_retries");
    const uint64_t backoff = policy.BackoffTicks(attempt, retry_rng_);
    for (uint64_t t = 0; t < backoff; ++t) {
      app_->Tick();
    }
    cmd_backoff_ticks_ += backoff;
    ++attempt;
    ++cmd_attempts_;
    control = LocateControl(info);
  }
  if (control != nullptr) {
    detail += "[located after retry] ";
  }
  return control;
}

support::Status VisitExecutor::NavigatePath(const std::vector<int>& path,
                                            std::string& detail) {
  support::TraceSpan span("visit.navigate", "visit");
  span.AddArg("path_len", static_cast<int64_t>(path.size()));
  if (path.empty()) {
    return support::InvalidArgumentError("empty navigation path");
  }
  const topo::NavGraph& dag = catalog_->dag();

  // Backward matching: find the deepest path element currently visible,
  // closing foreign windows if nothing matches (§4.3 "Path navigation").
  int start_index = -1;
  int closes = 0;
  while (start_index < 0) {
    for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
      if (LocateControl(dag.node(path[static_cast<size_t>(i)])) != nullptr) {
        start_index = i;
        break;
      }
    }
    if (start_index >= 0) {
      break;
    }
    gsim::Window* top = app_->TopWindow();
    if (top == nullptr || top == &app_->main_window() ||
        closes >= config_.max_window_closes) {
      return support::NotFoundError(
          "no element of the navigation path is visible in the current UI state");
    }
    // Close the topmost window, favoring OK > Close > Cancel.
    gsim::Control* dispose = top->FindDisposeButton();
    if (dispose == nullptr) {
      return support::FailedPreconditionError("window '" + top->title() +
                                              "' has no close button");
    }
    support::Status s = app_->Click(*dispose);
    if (!s.ok()) {
      return s;
    }
    ++closes;
    detail += "[closed window via " + dispose->TrueName() + "] ";
  }

  // Forward traversal: click each path node from the match point onward.
  const support::RetryPolicy policy = EffectiveRetryPolicy();
  for (size_t i = static_cast<size_t>(start_index); i < path.size(); ++i) {
    const topo::NodeInfo& info = dag.node(path[i]);
    gsim::Control* control = LocateControlWithRetry(info, detail);
    if (control == nullptr) {
      support::ErrorDetail d;
      d.control_id = info.control_id;
      d.control_name = info.name;
      d.retryable = true;  // the control may still materialize later
      d.attempts = cmd_attempts_;
      d.backoff_ticks = cmd_backoff_ticks_;
      return support::NotFoundError(
                 support::Format("control '%s' (%s) expected on the path is not present; "
                                 "the UI may have diverged from the model",
                                 info.name.c_str(),
                                 std::string(uia::ControlTypeName(info.type)).c_str()))
          .WithDetail(std::move(d));
    }
    if (!control->IsEnabled()) {
      support::ErrorDetail d;
      d.control_id = info.control_id;
      d.control_name = info.name;
      d.retryable = false;  // disabled is a state problem, not a transient one
      d.attempts = cmd_attempts_;
      d.backoff_ticks = cmd_backoff_ticks_;
      return support::FailedPreconditionError(
                 support::Format(
                     "control '%s' (%s) was located but is disabled in the current state",
                     info.name.c_str(), std::string(uia::ControlTypeName(info.type)).c_str()))
          .WithDetail(std::move(d));
    }
    support::Status s = app_->Click(*control);
    // Typed recovery: a retryable failure (freeze window, stale element
    // reference, transient pattern failure, slow load) is retried under the
    // backoff schedule, re-locating first — a stale reference invalidated
    // every captured id, so the control must be found again.
    int click_retry = 1;
    while (!s.ok() && support::IsRetryable(s) && policy.ShouldRetry(click_retry) &&
           !DeadlineExpired()) {
      support::CountMetric("robust.click_retries");
      const uint64_t backoff = policy.BackoffTicks(click_retry, retry_rng_);
      for (uint64_t t = 0; t < backoff; ++t) {
        app_->Tick();
      }
      cmd_backoff_ticks_ += backoff;
      ++click_retry;
      ++cmd_attempts_;
      gsim::Control* again = LocateControl(info);
      if (again != nullptr) {
        control = again;
      }
      s = app_->Click(*control);
    }
    if (s.ok() && config_.enable_retry && i + 1 < path.size()) {
      // If the click silently failed (next node absent), retry the click.
      const topo::NodeInfo& next = dag.node(path[i + 1]);
      int attempt = 1;
      while (policy.ShouldRetry(attempt) && LocateControl(next) == nullptr &&
             !DeadlineExpired()) {
        const uint64_t backoff = policy.BackoffTicks(attempt, retry_rng_);
        for (uint64_t t = 0; t < backoff; ++t) {
          app_->Tick();
        }
        cmd_backoff_ticks_ += backoff;
        ++attempt;
        if (LocateControl(next) != nullptr) {
          break;
        }
        ++cmd_attempts_;
        s = app_->Click(*control);
        if (!s.ok()) {
          break;
        }
      }
    }
    if (!s.ok()) {
      support::ErrorDetail d;
      if (s.has_detail()) {
        d = s.detail();
      }
      if (d.control_id.empty()) {
        d.control_id = info.control_id;
      }
      if (d.control_name.empty()) {
        d.control_name = info.name;
      }
      d.retryable = support::IsRetryable(s);
      d.attempts = cmd_attempts_;
      d.backoff_ticks = cmd_backoff_ticks_;
      return WithAugmentedDetail(s, std::move(d));
    }
  }
  return support::Status::Ok();
}

VisitReport VisitExecutor::ExecuteParsed(std::vector<VisitCommand> commands) {
  support::TraceSpan span("visit.execute", "visit");
  span.AddArg("commands", static_cast<int64_t>(commands.size()));
  support::CountMetric("visit.calls");
  support::CountMetric("visit.commands", commands.size());
  const int64_t execute_start_us = support::TraceNowUs();
  VisitReport report;

  // further_query short-circuits (exclusivity enforced by the parser).
  if (commands.size() == 1 && commands[0].kind == VisitCommand::Kind::kFurtherQuery) {
    support::CountMetric("visit.further_queries");
    report.was_further_query = true;
    CommandReport cr;
    cr.command = commands[0];
    if (commands[0].further_query == -1) {
      report.further_query_text = catalog_->FullText();
      cr.status = support::Status::Ok();
    } else {
      auto text = catalog_->ExpandBranch(commands[0].further_query);
      if (text.ok()) {
        report.further_query_text = *text;
        cr.status = support::Status::Ok();
      } else {
        cr.status = text.status();
        report.overall = text.status();
      }
    }
    report.commands.push_back(std::move(cr));
    return report;
  }

  // Non-leaf filtering (§3.4 "Handling improper LLM instruction-following"):
  // navigation nodes are non-leaves; drop commands targeting them, plus any
  // shortcut commands immediately following a dropped command.
  std::vector<CommandReport> prepared;
  bool previous_dropped = false;
  for (VisitCommand& cmd : commands) {
    CommandReport cr;
    cr.command = cmd;
    if (config_.enable_nonleaf_filter) {
      if ((cmd.kind == VisitCommand::Kind::kAccess ||
           cmd.kind == VisitCommand::Kind::kAccessInput) &&
          !cmd.enforced) {
        const topo::TreeNode* node = catalog_->forest().FindById(cmd.target_id);
        if (node != nullptr && (node->is_reference || !node->children.empty())) {
          cr.filtered = true;
          cr.status = support::Status::Ok();
          previous_dropped = true;
          ++report.filtered_count;
          prepared.push_back(std::move(cr));
          continue;
        }
        previous_dropped = false;
      } else if (cmd.kind == VisitCommand::Kind::kShortcut && previous_dropped) {
        // A shortcut meant to follow a filtered command is dropped too.
        cr.filtered = true;
        cr.status = support::Status::Ok();
        ++report.filtered_count;
        prepared.push_back(std::move(cr));
        continue;
      } else {
        previous_dropped = false;
      }
    }
    prepared.push_back(std::move(cr));
  }

  // Sequential execution; the first failure aborts the remainder (their
  // preconditions are gone) but the report covers everything.
  const gsim::ActionStats before = app_->stats();
  bool aborted = false;
  for (CommandReport& cr : prepared) {
    if (cr.filtered) {
      report.commands.push_back(std::move(cr));
      continue;
    }
    if (aborted) {
      support::ErrorDetail d;
      d.retryable = false;
      cr.status = support::FailedPreconditionError("skipped: an earlier command failed")
                      .WithDetail(std::move(d));
      report.commands.push_back(std::move(cr));
      continue;
    }
    if (DeadlineExpired()) {
      // The run's tick budget is gone: no further command starts (acceptance:
      // a run never exceeds its budget by more than the one command that was
      // in flight when it lapsed).
      support::ErrorDetail d;
      d.retryable = false;
      cr.status = support::DeadlineExceededError("run deadline exhausted before this command")
                      .WithDetail(std::move(d));
      support::CountMetric("robust.deadline_skipped_commands");
      if (flight_ != nullptr) {
        flight_->RecordCommand(cr.command.ToString(), cr.status);
      }
      if (report.overall.ok()) {
        report.overall = cr.status;
      }
      report.commands.push_back(std::move(cr));
      continue;
    }
    cmd_attempts_ = 0;
    cmd_backoff_ticks_ = 0;
    switch (cr.command.kind) {
      case VisitCommand::Kind::kShortcut: {
        cr.status = app_->PressKey(cr.command.shortcut_key);
        break;
      }
      case VisitCommand::Kind::kAccess:
      case VisitCommand::Kind::kAccessInput: {
        auto path = catalog_->forest().ResolvePath(cr.command.target_id,
                                                   cr.command.entry_ref_ids);
        if (!path.ok()) {
          cr.status = path.status();
          break;
        }
        cr.status = NavigatePath(*path, cr.detail);
        if (cr.status.ok() && cr.command.kind == VisitCommand::Kind::kAccessInput) {
          // The access click focused the edit; now type.
          cr.status = app_->TypeText(cr.command.text);
        }
        break;
      }
      case VisitCommand::Kind::kFurtherQuery:
        cr.status = support::InternalError("further_query mixed into execution");
        break;
    }
    if (!cr.status.ok() && !cr.status.has_detail()) {
      // Acceptance contract: every failure carries a populated ErrorDetail,
      // including paths that fail before a control is involved (unresolvable
      // ids, shortcut chords the app rejects).
      support::ErrorDetail d;
      d.retryable = support::IsRetryable(cr.status);
      d.attempts = cmd_attempts_ > 0 ? cmd_attempts_ : 1;
      d.backoff_ticks = cmd_backoff_ticks_;
      cr.status = WithAugmentedDetail(cr.status, std::move(d));
    }
    if (cmd_attempts_ > 0) {
      support::ObserveMetric("robust.attempts_per_command",
                             static_cast<double>(cmd_attempts_));
    }
    if (cmd_backoff_ticks_ > 0) {
      support::ObserveMetric("robust.backoff_ticks",
                             static_cast<double>(cmd_backoff_ticks_));
    }
    if (flight_ != nullptr) {
      // Retry spending first (so the postmortem reads in causal order), then
      // the command with its final status + ErrorDetail.
      if (cmd_attempts_ > 1 || cmd_backoff_ticks_ > 0) {
        flight_->RecordRetry(cr.command.ToString(), cmd_attempts_, cmd_backoff_ticks_);
      }
      flight_->RecordCommand(cr.command.ToString(), cr.status);
    }
    if (!cr.status.ok()) {
      report.overall = cr.status;
      aborted = true;
    }
    report.commands.push_back(std::move(cr));
  }
  const gsim::ActionStats after = app_->stats();
  report.ui_actions = (after.clicks - before.clicks) + (after.key_chords - before.key_chords) +
                      (after.text_inputs - before.text_inputs);
  if (report.filtered_count > 0) {
    support::CountMetric("visit.filtered", report.filtered_count);
  }
  if (!deadline_.unlimited()) {
    support::ObserveMetric(
        "robust.deadline_headroom_ticks",
        static_cast<double>(deadline_.RemainingTicks(app_->current_tick())));
  }
  support::ObserveMetric(
      "visit.execute_ms",
      static_cast<double>(support::TraceNowUs() - execute_start_us) / 1000.0);
  return report;
}

}  // namespace dmi
