// DmiSession: the end-to-end DMI facade.
//
// Offline (once per application build): rip the UI Navigation Graph, decycle
// it, run cost-based selective externalization, and build the query-on-demand
// catalog. Online (per task): serve the pruned core topology + screen labels
// + passive data payload as prompt context, and execute visit / state /
// observation declarations against the live application.
#ifndef SRC_DMI_SESSION_H_
#define SRC_DMI_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/describe/catalog.h"
#include "src/dmi/interaction.h"
#include "src/dmi/visit.h"
#include "src/gui/application.h"
#include "src/gui/screen.h"
#include "src/ripper/ripper.h"
#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace dmi {

struct ModelingOptions {
  ripper::RipperConfig ripper_config;
  // Synthesize descriptions for undocumented controls before serialization
  // (§5.7 "Rich control descriptions"; rule-based, never overwrites app
  // metadata).
  bool augment_descriptions = false;
  std::vector<ripper::RipContext> contexts;
  uint64_t externalize_threshold = topo::kDefaultExternalizeThreshold;
  desc::PruneOptions prune;
  desc::DescribeOptions describe;
  VisitConfig visit;
  InteractionConfig interaction;
};

struct ModelingStats {
  topo::GraphStats raw;
  size_t back_edges_removed = 0;
  size_t unreachable_dropped = 0;
  size_t forest_nodes = 0;
  size_t shared_subtrees = 0;
  size_t references = 0;
  size_t core_nodes = 0;
  size_t core_tokens = 0;
  size_t full_tokens = 0;
  ripper::RipStats rip;
};

// A target resolved from human-readable names to DMI's id language.
struct ResolvedTarget {
  int id = -1;
  std::vector<int> entry_ref_ids;
};

class DmiSession {
 public:
  // Offline modeling: rips `app` (instability should be disabled during
  // modeling — the offline phase is a controlled environment) and builds the
  // full pipeline.
  static std::unique_ptr<DmiSession> Model(gsim::Application& app,
                                           const ModelingOptions& options);

  // Builds a session from a pre-ripped graph (models are reusable across
  // machines for the same app build, §5.2).
  DmiSession(gsim::Application& app, topo::NavGraph graph, const ModelingOptions& options);

  const ModelingStats& stats() const { return stats_; }
  const desc::TopologyCatalog& catalog() const { return *catalog_; }
  gsim::ScreenView& screen() { return screen_; }
  InteractionInterfaces& interaction() { return interaction_; }
  gsim::Application& app() { return *app_; }

  // ----- the three declarative primitives ------------------------------------
  VisitReport Visit(const std::string& json_commands);
  VisitReport VisitParsed(std::vector<VisitCommand> commands);
  // state/observation declarations live on interaction().

  // ----- prompt assembly --------------------------------------------------------
  // Core topology + DMI usage hint + screen labels + passive data payload.
  // Cached against the application's UI-state generation: a warm turn (no UI
  // mutation since the last build) returns the cached string without
  // re-rendering anything. Mutating the UI through any generation-bumping
  // path invalidates the cache (DESIGN.md §9).
  const std::string& BuildPromptContext();
  // Reference (cache-bypassing) assembly; tests and benches assert the cached
  // prompt byte-identical against it.
  std::string BuildPromptContextUncached();
  // Streaming-summed token count: cached usage-hint + core counts plus only
  // the dynamic screen/data segment. Equal to CountTokens(BuildPromptContext()).
  size_t PromptTokens();

  // ----- model persistence ------------------------------------------------------
  // Ripped models are version-specific but reusable across machines for the
  // same application build (§5.2). SaveModel writes the raw UNG as JSON;
  // LoadModel reads it back (the session re-derives DAG/forest/catalog).
  static support::Status SaveModel(const topo::NavGraph& graph, const std::string& path);
  static support::Result<topo::NavGraph> LoadModel(const std::string& path);

  // ----- name-based resolution (used by task ground truth and examples) --------
  // Resolves an access chain given by human-readable names (a suffix of the
  // full chain, e.g. {"Font Color", "Blue"}): returns the target id plus the
  // entry references needed. Errors if no unique-enough match exists.
  support::Result<ResolvedTarget> ResolveTargetByNames(const std::vector<std::string>& names);

 private:
  void FinishConstruction(const ModelingOptions& options, topo::NavGraph graph);

  // Prompt context + token count, valid while the application's UI-state
  // generation is unchanged.
  struct PromptCache {
    bool valid = false;
    uint64_t generation = 0;
    std::string prompt;
    size_t tokens = 0;
  };

  gsim::Application* app_;
  ModelingStats stats_;
  std::unique_ptr<topo::NavGraph> dag_;
  std::unique_ptr<desc::TopologyCatalog> catalog_;
  gsim::ScreenView screen_;
  std::unique_ptr<VisitExecutor> executor_;
  InteractionInterfaces interaction_;
  PromptCache prompt_cache_;
  size_t usage_hint_tokens_ = 0;  // counted once at construction
};

}  // namespace dmi

#endif  // SRC_DMI_SESSION_H_
