// DmiSession: the end-to-end DMI facade.
//
// Offline (once per application build): rip the UI Navigation Graph, decycle
// it, run cost-based selective externalization, and build the query-on-demand
// catalog — all captured in an immutable, shareable dmi::CompiledModel
// (compiled_model.h). Online (per task): a thin session attaches a live
// application to a shared model and serves the pruned core topology + screen
// labels + passive data payload as prompt context, executing visit / state /
// observation declarations against the live application. Session construction
// on a pre-compiled model is O(dynamic state), not O(topology) (DESIGN.md §10).
#ifndef SRC_DMI_SESSION_H_
#define SRC_DMI_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/describe/catalog.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/interaction.h"
#include "src/dmi/visit.h"
#include "src/gui/application.h"
#include "src/gui/screen.h"
#include "src/ripper/ripper.h"
#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace dmi {

// Per-run knobs for a session attached to a pre-compiled model. Everything
// topological lives in ModelingOptions and is baked into the CompiledModel.
struct SessionOptions {
  VisitConfig visit;
  InteractionConfig interaction;
};

// Zero-copy prompt context (DESIGN.md §12): the static segment (usage hint +
// core topology) lives on the shared CompiledModel — one copy per app kind,
// however many sessions are attached — and the dynamic segment (screen
// listing + passive data payload) is this session's generation-cached state.
// `tokens` equals CountTokens(static + dynamic); the join point falls on a
// newline, so the segment sum is exact.
struct PromptView {
  const std::string* static_text = nullptr;
  const std::string* dynamic_text = nullptr;
  size_t tokens = 0;

  // Materializes the concatenation (tests, tools, anything that needs one
  // contiguous string). The hot paths consume the segments directly.
  std::string Assemble() const;
};

class DmiSession {
 public:
  // Offline modeling: rips `app` (instability should be disabled during
  // modeling — the offline phase is a controlled environment) and builds the
  // full pipeline.
  static std::unique_ptr<DmiSession> Model(gsim::Application& app,
                                           const ModelingOptions& options);

  // Cold path: compiles a private model from a pre-ripped graph (models are
  // reusable across machines for the same app build, §5.2). The graph is
  // read-only; no by-value copy is taken.
  DmiSession(gsim::Application& app, const topo::NavGraph& graph,
             const ModelingOptions& options);

  // Warm path: attaches a live application to a shared pre-compiled model.
  // Visit/interaction configs default to the ones the model was compiled
  // with; the second overload overrides them per run.
  DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model);
  DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model,
             const SessionOptions& options);

  const ModelingStats& stats() const { return stats_; }
  const desc::TopologyCatalog& catalog() const { return model_->catalog(); }
  const CompiledModel& model() const { return *model_; }
  std::shared_ptr<const CompiledModel> shared_model() const { return model_; }
  gsim::ScreenView& screen() { return screen_; }
  InteractionInterfaces& interaction() { return interaction_; }
  gsim::Application& app() { return *app_; }

  // ----- the three declarative primitives ------------------------------------
  VisitReport Visit(const std::string& json_commands);
  VisitReport VisitParsed(std::vector<VisitCommand> commands);
  // state/observation declarations live on interaction().

  // ----- per-run robustness plumbing (DESIGN.md §11) -------------------------
  // Tick budget enforced by the visit executor's retry loops and command
  // dispatch; default unlimited.
  void SetRunDeadline(support::Deadline deadline) { executor_->SetDeadline(deadline); }
  const support::Deadline& run_deadline() const { return executor_->deadline(); }
  // Deterministic backoff-jitter seed for this run (visit + interaction).
  void SeedRetryRng(uint64_t seed) {
    executor_->SeedRetryRng(seed);
    interaction_.SeedRetryRng(seed ^ 0x5bd1e9955bd1e995ULL);
  }
  // The run's flight recorder (DESIGN.md §13): the visit executor streams
  // executed commands + retry spending into it. Borrowed; nullptr = off.
  void SetFlightRecorder(support::FlightRecorder* recorder) {
    executor_->SetFlightRecorder(recorder);
  }
  support::FlightRecorder* flight_recorder() const { return executor_->flight_recorder(); }

  // ----- prompt assembly --------------------------------------------------------
  // Core topology + DMI usage hint + screen labels + passive data payload,
  // served as a two-segment view: the static segment comes straight off the
  // shared CompiledModel and the dynamic segment is cached against the
  // application's UI-state generation — a warm turn (no UI mutation since the
  // last build) re-renders nothing. Mutating the UI through any
  // generation-bumping path invalidates the dynamic cache (DESIGN.md §9, §12).
  PromptView Prompt();
  // Compatibility assembly: Prompt().Assemble(). Materializes the full
  // concatenation on every call — hot paths should consume Prompt() instead.
  std::string BuildPromptContext();
  // Reference (cache-bypassing) assembly; tests and benches assert the cached
  // segments byte-identical against it.
  std::string BuildPromptContextUncached();
  // Count-only path: shared static count plus the streamed dynamic segment,
  // never materializing the assembled prompt (or even the dynamic segment
  // when only the count is needed). Equal to
  // CountTokens(BuildPromptContextUncached()).
  size_t PromptTokens();
  // Resident per-session prompt-cache bytes: the dynamic segment only. The
  // static segment's bytes live once on the shared model
  // (model().static_prompt().size()).
  size_t PromptCacheBytes() const { return prompt_cache_.dynamic.size(); }

  // ----- model persistence ------------------------------------------------------
  // Ripped models are version-specific but reusable across machines for the
  // same application build (§5.2). SaveModel writes the raw UNG as JSON;
  // LoadModel reads it back (the session re-derives DAG/forest/catalog).
  static support::Status SaveModel(const topo::NavGraph& graph, const std::string& path);
  static support::Result<topo::NavGraph> LoadModel(const std::string& path);

  // ----- name-based resolution (used by task ground truth and examples) --------
  // Forwards to the compiled model (pure query on the immutable forest/DAG).
  support::Result<ResolvedTarget> ResolveTargetByNames(const std::vector<std::string>& names);

 private:
  // Dynamic prompt segment + token count, valid while the application's
  // UI-state generation is unchanged. Only the dynamic segment is cached
  // per session; the static segment is shared on the CompiledModel. A
  // count-only probe (PromptTokens) fills `dynamic_tokens` without
  // materializing `dynamic`.
  struct PromptCache {
    uint64_t generation = 0;
    bool tokens_valid = false;
    bool text_valid = false;
    std::string dynamic;
    size_t dynamic_tokens = 0;
  };

  gsim::Application* app_;
  std::shared_ptr<const CompiledModel> model_;
  // Per-session copy of the model's stats so Model() can fold the rip stats
  // in without mutating the shared (immutable) model.
  ModelingStats stats_;
  gsim::ScreenView screen_;
  std::unique_ptr<VisitExecutor> executor_;
  InteractionInterfaces interaction_;
  PromptCache prompt_cache_;
};

}  // namespace dmi

#endif  // SRC_DMI_SESSION_H_
