// dmi::Policy: the consolidated per-run robustness policy (DESIGN.md §11).
//
// Historically the knobs were scattered: VisitConfig (retry/fuzzy/filter),
// InteractionConfig (payload caps), the instability level on RunConfig, and —
// with the robustness layer — typed retry schedules and a per-run tick
// deadline. Policy aggregates all of them behind named presets that mirror
// gsim::InstabilityConfig::{None,Typical,Harsh,Hostile}: the preset pairs a
// hazard level with the retry/deadline posture calibrated for it. The old
// structs (VisitConfig, InteractionConfig) remain the working views — Policy
// holds them by value and session_options() projects them out — so every
// existing call site keeps compiling unchanged.
#ifndef SRC_DMI_POLICY_H_
#define SRC_DMI_POLICY_H_

#include <cstdint>

#include "src/dmi/interaction.h"
#include "src/dmi/visit.h"
#include "src/gui/instability.h"
#include "src/support/retry.h"

namespace dmi {

// Forward-declared here to avoid a session.h cycle; defined in session.h.
struct SessionOptions;

struct Policy {
  // Preset name ("none", "typical", "harsh", "hostile"); empty for a policy
  // assembled by hand. Used as the `policy` label on agent.* metrics.
  const char* name = "";
  VisitConfig visit;
  InteractionConfig interaction;
  // Hazard level this run faces (drives the InstabilityInjector).
  gsim::InstabilityConfig instability;
  // Per-run tick budget; 0 = unlimited.
  uint64_t run_deadline_ticks = 0;

  // Presets, from calm to adversarial. Retry schedules stiffen with the
  // hazard level; only Hostile bounds the run with a deadline.
  static Policy None();
  static Policy Typical();
  static Policy Harsh();
  static Policy Hostile();

  // Thin view for DmiSession construction (visit + interaction only).
  SessionOptions session_options() const;

  support::Deadline MakeDeadline(uint64_t start_tick) const {
    return run_deadline_ticks == 0
               ? support::Deadline::Unlimited()
               : support::Deadline::AtTicks(start_tick, run_deadline_ticks);
  }
};

}  // namespace dmi

#endif  // SRC_DMI_POLICY_H_
