#include "src/dmi/policy.h"

#include "src/dmi/session.h"

namespace dmi {

Policy Policy::None() {
  Policy p;
  p.name = "none";
  p.instability = gsim::InstabilityConfig::None();
  return p;
}

Policy Policy::Typical() {
  Policy p;
  p.name = "typical";
  p.instability = gsim::InstabilityConfig::Typical();
  return p;
}

Policy Policy::Harsh() {
  Policy p;
  p.name = "harsh";
  p.instability = gsim::InstabilityConfig::Harsh();
  // Slow loads stretch to 4 ticks under Harsh; exponential backoff reaches
  // them in fewer attempts than the legacy 1-tick fixed loop.
  p.visit.retry = support::RetryPolicy::ExponentialJitter(
      /*max_attempts=*/4, /*initial_ticks=*/1, /*multiplier=*/2.0,
      /*max_ticks=*/8, /*jitter=*/0.0);
  p.interaction.retry = p.visit.retry;
  return p;
}

Policy Policy::Hostile() {
  Policy p;
  p.name = "hostile";
  p.instability = gsim::InstabilityConfig::Hostile();
  // Freeze windows last 5 ticks and pattern windows 3; the schedule must be
  // able to outwait one full window within its attempt budget. Jitter
  // decorrelates retries from the fault windows (drawn from the seeded run
  // RNG, so still deterministic per seed).
  p.visit.retry = support::RetryPolicy::ExponentialJitter(
      /*max_attempts=*/5, /*initial_ticks=*/1, /*multiplier=*/2.0,
      /*max_ticks=*/12, /*jitter=*/0.25);
  p.interaction.retry = p.visit.retry;
  // Bounded badness: a hostile run may never stall unboundedly.
  p.run_deadline_ticks = 600;
  return p;
}

SessionOptions Policy::session_options() const {
  SessionOptions options;
  options.visit = visit;
  options.interaction = interaction;
  return options;
}

}  // namespace dmi
