// The visit executor: access declaration (paper §3.4, §4.3).
//
// Pipeline per call:
//   1. Parse the JSON command array.
//   2. Filter: commands targeting non-leaf (navigation) nodes are discarded —
//      DMI entirely takes over navigation — and shortcut commands immediately
//      following a discarded command are dropped too.
//   3. Resolve each retained target to its unique root-to-target path.
//   4. Navigate: fetch the topmost valid window, match the path from the end
//      backward against the visible hierarchy; if nothing matches, close the
//      window (OK > Close > Cancel); then proceed forward, clicking each path
//      node, with fuzzy matching and bounded retries for slow controls.
//   5. Interact: the final click (plus text input for access-and-input).
// Shortcut commands are executed verbatim and never retried (repeating an
// ENTER has side effects).
#ifndef SRC_DMI_VISIT_H_
#define SRC_DMI_VISIT_H_

#include <string>
#include <vector>

#include "src/describe/catalog.h"
#include "src/dmi/command.h"
#include "src/gui/application.h"
#include "src/ripper/visible_index.h"
#include "src/support/retry.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace support {
class FlightRecorder;
}  // namespace support

namespace dmi {

struct VisitConfig {
  // Robustness toggles (ablated in bench_ablation_robustness).
  bool enable_nonleaf_filter = true;
  bool enable_fuzzy_match = true;
  bool enable_retry = true;
  int max_retries = 3;
  double fuzzy_threshold = 0.72;
  // How many windows the executor may close while searching for the path.
  int max_window_closes = 4;
  // Serve exact-id control location from the generation-stamped VisibleIndex
  // (O(1) per step on an unchanged UI). Fuzzy fallback still walks the tree.
  bool enable_visible_index = true;
  // Typed retry schedule (DESIGN.md §11). Left unset (the default), the
  // executor derives the legacy fixed loop from enable_retry/max_retries —
  // byte-identical Tick/Locate/Click sequences; set it (e.g. via
  // dmi::Policy) for exponential backoff with jitter.
  support::RetryPolicy retry;
};

struct CommandReport {
  VisitCommand command;
  support::Status status;
  bool filtered = false;  // dropped by non-leaf filtering
  // Structured feedback for the LLM (control state, close actions, ...).
  std::string detail;
};

struct VisitReport {
  std::vector<CommandReport> commands;
  support::Status overall;  // OK iff every executed command succeeded
  bool was_further_query = false;
  std::string further_query_text;
  size_t filtered_count = 0;
  size_t ui_actions = 0;  // clicks + keys + text inputs performed

  // Rendered feedback for the LLM prompt. Byte-stable: this string is part
  // of the LLM-feedback contract (DESIGN.md §11) and ignores ErrorDetail.
  std::string Render() const;

  // Machine-readable mirror of Render(): a JSON object carrying every
  // per-command status including its structured ErrorDetail payload.
  // Round-trips through jsonv::Parse (emitted by `dmi_run --report-json`).
  std::string RenderJson() const;
};

class VisitExecutor {
 public:
  VisitExecutor(gsim::Application& app, const desc::TopologyCatalog& catalog,
                VisitConfig config);

  // Full pipeline from raw JSON.
  VisitReport Execute(const std::string& json_commands);

  // Pipeline from parsed commands (used by the simulated agent directly).
  VisitReport ExecuteParsed(std::vector<VisitCommand> commands);

  // Per-run tick budget (default: unlimited). Retry loops stop early and
  // commands past the budget report kDeadlineExceeded instead of running.
  void SetDeadline(support::Deadline deadline) { deadline_ = deadline; }
  const support::Deadline& deadline() const { return deadline_; }

  // Reseeds the backoff-jitter RNG (deterministic per run seed). Only drawn
  // when the retry policy carries jitter > 0, so legacy schedules consume no
  // randomness.
  void SeedRetryRng(uint64_t seed) { retry_rng_ = support::Rng(seed); }

  // Streams every executed command (with its final status + ErrorDetail) and
  // retry/backoff spending into the run's flight recorder (DESIGN.md §13).
  // Borrowed pointer owned by the runner; nullptr (the default) disables.
  void SetFlightRecorder(support::FlightRecorder* recorder) { flight_ = recorder; }
  support::FlightRecorder* flight_recorder() const { return flight_; }

 private:
  // Navigates along the resolved graph-node path and clicks each step.
  support::Status NavigatePath(const std::vector<int>& path, std::string& detail);

  // Finds the visible control matching the graph node, exact-first then
  // fuzzy. Returns nullptr when not found.
  gsim::Control* LocateControl(const topo::NodeInfo& info);
  gsim::Control* LocateControlWithRetry(const topo::NodeInfo& info, std::string& detail);

  // The typed schedule actually used: config_.retry when set, else the
  // legacy fixed loop derived from enable_retry/max_retries.
  support::RetryPolicy EffectiveRetryPolicy() const;

  bool DeadlineExpired() const { return deadline_.Expired(app_->current_tick()); }

  gsim::Application* app_;
  const desc::TopologyCatalog* catalog_;
  VisitConfig config_;
  ripper::VisibleIndex index_;
  support::Deadline deadline_;  // default: unlimited
  support::Rng retry_rng_{0x9e3779b97f4a7c15ULL};
  // Robustness accounting for the command currently executing (feeds the
  // robust.* metrics and ErrorDetail attempts/backoff fields).
  int cmd_attempts_ = 0;
  uint64_t cmd_backoff_ticks_ = 0;
  support::FlightRecorder* flight_ = nullptr;  // borrowed; null = off
};

}  // namespace dmi

#endif  // SRC_DMI_VISIT_H_
