#include "src/dmi/model_registry.h"

#include "src/dmi/model_artifact.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace dmi {

std::string ModelRegistry::ArtifactPath(const std::string& app_kind,
                                        const std::string& app_version) const {
  if (model_dir_.empty()) {
    return "";
  }
  return model_dir_ + "/" + app_kind + "-" + app_version + kArtifactExtension;
}

support::Result<std::shared_ptr<const CompiledModel>> ModelRegistry::Acquire(
    const std::string& app_kind, const std::string& app_version,
    const ModelingOptions& runtime_options, const CompileFn& compile) {
  support::TraceSpan span("registry.acquire", "model");
  span.AddArg("app", app_kind + "-" + app_version);
  const std::pair<std::string, std::string> key(app_kind, app_version);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    support::CountMetric("registry.memo_hits");
    return it->second;
  }

  const std::string path = ArtifactPath(app_kind, app_version);
  if (!path.empty()) {
    ArtifactMeta expect{app_kind, app_version};
    support::Result<LoadedModelArtifact> loaded =
        LoadModelArtifact(path, runtime_options, &expect);
    if (loaded.ok()) {
      ++stats_.artifact_loads;
      support::CountMetric("registry.artifact_loads");
      memo_.emplace(key, loaded->model);
      return loaded->model;
    }
    if (loaded.status().code() != support::StatusCode::kNotFound) {
      // A present-but-unusable artifact is worth a log line — it means a
      // stale or corrupt store — but never blocks the run: the compile
      // fallback rebuilds and the save-through replaces it.
      ++stats_.load_errors;
      support::CountMetric("registry.load_errors");
      support::LogMessage(support::LogLevel::kWarning,
                          "registry: artifact rejected, recompiling: " +
                              loaded.status().ToString());
    }
  }

  support::Result<std::shared_ptr<const CompiledModel>> model = compile();
  if (!model.ok()) {
    return model.status();
  }
  ++stats_.compiles;
  support::CountMetric("registry.compiles");
  if (!path.empty()) {
    ArtifactMeta meta{app_kind, app_version};
    support::Status saved = SaveModelArtifact(**model, meta, path);
    if (saved.ok()) {
      ++stats_.save_throughs;
      support::CountMetric("registry.save_throughs");
    } else {
      // Save-through is best-effort: a read-only store just means the next
      // process compiles again.
      support::LogMessage(support::LogLevel::kWarning,
                          "registry: artifact save-through failed: " + saved.ToString());
    }
  }
  memo_.emplace(key, *model);
  return *model;
}

}  // namespace dmi
