#include "src/dmi/model_registry.h"

#include "src/dmi/model_artifact.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace dmi {

std::string ModelRegistry::ArtifactPath(const std::string& app_kind,
                                        const std::string& app_version) const {
  if (model_dir_.empty()) {
    return "";
  }
  return model_dir_ + "/" + app_kind + "-" + app_version + kArtifactExtension;
}

support::Result<std::shared_ptr<const CompiledModel>> ModelRegistry::Acquire(
    const std::string& app_kind, const std::string& app_version,
    const ModelingOptions& runtime_options, const CompileFn& compile) {
  support::TraceSpan span("registry.acquire", "model");
  span.AddArg("app", app_kind + "-" + app_version);
  const std::pair<std::string, std::string> key(app_kind, app_version);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    support::CountMetric("registry.memo_hits");
    return it->second;
  }

  const std::string path = ArtifactPath(app_kind, app_version);
  if (!path.empty()) {
    ArtifactMeta expect{app_kind, app_version};
    support::Result<LoadedModelArtifact> loaded =
        LoadModelArtifact(path, runtime_options, &expect);
    if (loaded.ok()) {
      ++stats_.artifact_loads;
      support::CountMetric("registry.artifact_loads");
      memo_.emplace(key, loaded->model);
      return loaded->model;
    }
    if (loaded.status().code() != support::StatusCode::kNotFound) {
      // A present-but-unusable artifact is worth a log line — it means a
      // stale or corrupt store — but never blocks the run: the compile
      // fallback rebuilds and the save-through replaces it. The line is
      // emitted once per (kind, version): when the compile fallback also
      // fails (read-only store, broken pipeline), every session re-enters
      // this path, and a serving daemon would otherwise spam one warning per
      // admitted session for the same broken artifact.
      ++stats_.load_errors;
      support::CountMetric("registry.load_errors");
      if (load_error_logged_.insert(key).second) {
        ++stats_.load_errors_logged;
        support::LogMessage(support::LogLevel::kWarning,
                            "registry: artifact rejected, recompiling: " +
                                loaded.status().ToString());
      }
    }
  }

  support::Result<std::shared_ptr<const CompiledModel>> model = compile();
  if (!model.ok()) {
    return model.status();
  }
  ++stats_.compiles;
  support::CountMetric("registry.compiles");
  if (!path.empty()) {
    ArtifactMeta meta{app_kind, app_version};
    support::Status saved = SaveModelArtifact(**model, meta, path);
    if (saved.ok()) {
      ++stats_.save_throughs;
      support::CountMetric("registry.save_throughs");
    } else {
      // Save-through is best-effort: a read-only store just means the next
      // process compiles again.
      support::LogMessage(support::LogLevel::kWarning,
                          "registry: artifact save-through failed: " + saved.ToString());
    }
  }
  memo_.emplace(key, *model);
  if (latest_.find(app_kind) == latest_.end()) {
    latest_.emplace(app_kind, app_version);
  }
  return *model;
}

support::Result<std::shared_ptr<const CompiledModel>> ModelRegistry::Refresh(
    const std::string& app_kind, const std::string& old_version,
    const std::string& new_version, const ModelingOptions& runtime_options,
    const RemodelFn& remodel) {
  support::TraceSpan span("registry.refresh", "model");
  span.AddArg("app", app_kind + ": " + old_version + " -> " + new_version);
  const std::pair<std::string, std::string> new_key(app_kind, new_version);
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = memo_.find(new_key); it != memo_.end()) {
    ++stats_.memo_hits;
    support::CountMetric("registry.memo_hits");
    latest_[app_kind] = new_version;
    return it->second;
  }

  // Resolve the baseline: memo first, then a cold artifact load. A missing
  // baseline is not an error — the remodel callback full-rips from nothing.
  std::shared_ptr<const CompiledModel> baseline;
  if (auto it = memo_.find({app_kind, old_version}); it != memo_.end()) {
    baseline = it->second;
  } else if (const std::string path = ArtifactPath(app_kind, old_version); !path.empty()) {
    ArtifactMeta expect{app_kind, old_version};
    support::Result<LoadedModelArtifact> loaded =
        LoadModelArtifact(path, runtime_options, &expect);
    if (loaded.ok()) {
      baseline = loaded->model;
    }
  }

  support::Result<Remodeled> remodeled = remodel(baseline);
  if (!remodeled.ok()) {
    return remodeled.status();
  }
  ++stats_.delta_rips;
  stats_.delta_nodes_reused += remodeled->nodes_reused;
  support::CountMetric("registry.delta_rips");
  support::CountMetric("registry.delta_nodes_reused", remodeled->nodes_reused);

  if (const std::string path = ArtifactPath(app_kind, new_version); !path.empty()) {
    ArtifactMeta meta{app_kind, new_version};
    support::Status saved = SaveModelArtifact(*remodeled->model, meta, path);
    if (saved.ok()) {
      ++stats_.save_throughs;
      support::CountMetric("registry.save_throughs");
    } else {
      support::LogMessage(support::LogLevel::kWarning,
                          "registry: artifact save-through failed: " + saved.ToString());
    }
  }

  // Publish: after this insert, Acquire(new_version) memo-hits. The old
  // version's entry stays (sessions may still Acquire it mid-suite) until
  // Prune decides nothing holds it.
  memo_[new_key] = remodeled->model;
  latest_[app_kind] = new_version;
  if (flight_ != nullptr) {
    flight_->RecordNote("registry: " + app_kind + " model swapped " + old_version + " -> " +
                        new_version + " (reused " +
                        std::to_string(remodeled->nodes_reused) + " nodes)");
  }
  return remodeled->model;
}

size_t ModelRegistry::Prune(const std::string& app_kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto latest = latest_.find(app_kind);
  size_t dropped = 0;
  for (auto it = memo_.begin(); it != memo_.end();) {
    const bool same_kind = it->first.first == app_kind;
    const bool is_latest =
        latest != latest_.end() && it->first.second == latest->second;
    // use_count()==1 under the lock means the registry holds the only
    // reference: no session can race a copy out of a map it can't reach.
    if (same_kind && !is_latest && it->second.use_count() == 1) {
      it = memo_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.pruned += dropped;
  if (dropped > 0) {
    support::CountMetric("registry.pruned", dropped);
  }
  return dropped;
}

void ModelRegistry::SetFlightRecorder(support::FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  flight_ = recorder;
}

}  // namespace dmi
