#include "src/dmi/compiled_model.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "src/describe/augment.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/text/tokens.h"

namespace dmi {
namespace {

constexpr char kUsageHint[] =
    "# DMI usage\n"
    "Prefer DMI. visit([...]) accesses target controls by id; declare only\n"
    "functional (leaf) targets — DMI performs all navigation. Targets inside\n"
    "shared subtrees need entry_ref_id. {\"id\",\"text\"} types into an edit.\n"
    "{\"shortcut_key\"} is auxiliary (e.g. ENTER to commit). further_query(id|-1)\n"
    "fetches more topology and cannot be mixed with other commands. For\n"
    "composite interactions use state declarations (set_scrollbar_pos,\n"
    "select_lines, select_paragraphs, select_controls, set_toggle_state) and\n"
    "observation (get_texts) on current-screen labels, never topology ids.\n";

}  // namespace

const std::string& CompiledModel::UsageHint() {
  static const std::string hint = kUsageHint;
  return hint;
}

std::shared_ptr<const CompiledModel> CompiledModel::Compile(const topo::NavGraph& graph,
                                                            const ModelingOptions& options,
                                                            const ripper::RipStats* rip,
                                                            const ripper::ChecksumTable* checksums) {
  support::TraceSpan span("model.build", "model");
  const int64_t build_start_us = support::TraceNowUs();
  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->options_ = options;
  if (checksums != nullptr) {
    model->subtree_checksums_ = *checksums;
  }
  ModelingStats& stats = model->stats_;
  if (rip != nullptr) {
    stats.rip = *rip;
  }
  // Augmentation is the only pipeline stage that mutates the input graph;
  // everything downstream reads it, so the copy is taken only when needed.
  const topo::NavGraph* source = &graph;
  topo::NavGraph augmented;
  if (options.augment_descriptions) {
    augmented = graph;
    (void)desc::AugmentDescriptions(augmented, desc::BuiltinAugmentRules());
    source = &augmented;
  }
  stats.raw = source->ComputeStats();
  topo::DecycleResult decycled = topo::Decycle(*source);
  stats.back_edges_removed = decycled.removed_back_edges;
  stats.unreachable_dropped = decycled.unreachable_dropped;
  model->dag_ = std::make_unique<topo::NavGraph>(std::move(decycled.dag));
  topo::Forest forest = topo::SelectiveExternalize(*model->dag_, options.externalize_threshold);
  stats.forest_nodes = forest.total_nodes();
  stats.shared_subtrees = forest.shared().size();
  stats.references = forest.reference_count();
  model->catalog_ = std::make_unique<desc::TopologyCatalog>(
      model->dag_.get(), std::move(forest), options.prune, options.describe);
  stats.core_nodes = model->catalog_->core_stats().kept;
  stats.core_tokens = model->catalog_->CoreTokens();
  stats.full_tokens = model->catalog_->FullTokens();
  model->usage_hint_tokens_ = textutil::CountTokens(UsageHint());
  // The shared static prompt segment: assembled and counted exactly once per
  // compiled model. The hint ends in a newline, so the segment-summed count
  // equals the concatenation's count (see textutil::CountTokensAppend).
  const std::string& core = model->catalog_->CoreText();
  model->static_prompt_.reserve(UsageHint().size() + core.size());
  model->static_prompt_ = UsageHint();
  model->static_prompt_ += core;
  model->static_prompt_tokens_ = model->usage_hint_tokens_ + model->catalog_->CoreTokens();
  // Mirror the modeling summary onto the registry (ModelingStats remains the
  // per-model record; the registry is the process-wide aggregate).
  support::CountMetric("model.builds");
  support::CountMetric("session.compile_builds");
  support::CountMetric("model.raw_nodes", stats.raw.nodes);
  support::CountMetric("model.core_nodes", stats.core_nodes);
  support::CountMetric("model.core_tokens", stats.core_tokens);
  support::CountMetric("model.full_tokens", stats.full_tokens);
  support::ObserveMetric("model.build_ms",
                         static_cast<double>(support::TraceNowUs() - build_start_us) / 1000.0);
  span.AddArg("core_nodes", static_cast<int64_t>(stats.core_nodes));
  span.AddArg("core_tokens", static_cast<int64_t>(stats.core_tokens));
  return model;
}

namespace {

// Exact structural equality of shared subtree `s` across two forests: same
// forest ids, same shape, same reference wiring, and node-for-node identical
// NodeInfo content. This is the (sufficient and necessary) condition for the
// baseline's memoized serialization of that subtree to be byte-reusable —
// the serialized form embeds forest ids and S<n> labels, so anything that
// shifts ids must recompute.
bool SubtreeIdentical(const topo::NavGraph& baseline_dag, const topo::Tree& baseline_tree,
                      const topo::NavGraph& dag, const topo::Tree& tree) {
  if (baseline_tree.nodes.size() != tree.nodes.size()) {
    return false;
  }
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const topo::TreeNode& a = baseline_tree.nodes[i];
    const topo::TreeNode& b = tree.nodes[i];
    if (a.id != b.id || a.parent != b.parent || a.is_reference != b.is_reference ||
        a.ref_subtree != b.ref_subtree || a.children != b.children) {
      return false;
    }
    const topo::NodeInfo& an = baseline_dag.node(a.graph_index);
    const topo::NodeInfo& bn = dag.node(b.graph_index);
    if (an.control_id != bn.control_id || an.name != bn.name || an.type != bn.type ||
        an.description != bn.description || an.automation_id != bn.automation_id) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::shared_ptr<const CompiledModel> CompiledModel::RecompileDelta(
    const CompiledModel& baseline, const topo::NavGraph& graph, const ModelingOptions& options,
    const ripper::RipStats* rip, const ripper::ChecksumTable* checksums,
    RecompileCounters* counters) {
  support::TraceSpan span("model.recompile_delta", "model");
  const int64_t build_start_us = support::TraceNowUs();
  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->options_ = options;
  if (checksums != nullptr) {
    model->subtree_checksums_ = *checksums;
  }
  ModelingStats& stats = model->stats_;
  if (rip != nullptr) {
    stats.rip = *rip;
  }
  const topo::NavGraph* source = &graph;
  topo::NavGraph augmented;
  if (options.augment_descriptions) {
    augmented = graph;
    (void)desc::AugmentDescriptions(augmented, desc::BuiltinAugmentRules());
    source = &augmented;
  }
  // The graph passes (stats, decycle, externalize) are integer algorithms —
  // cheap relative to serialization/tokenization — and recomputing them keeps
  // the output a pure function of the graph, which is what the byte-identity
  // guarantee rests on.
  stats.raw = source->ComputeStats();
  topo::DecycleResult decycled = topo::Decycle(*source);
  stats.back_edges_removed = decycled.removed_back_edges;
  stats.unreachable_dropped = decycled.unreachable_dropped;
  model->dag_ = std::make_unique<topo::NavGraph>(std::move(decycled.dag));
  topo::Forest forest = topo::SelectiveExternalize(*model->dag_, options.externalize_threshold);
  stats.forest_nodes = forest.total_nodes();
  stats.shared_subtrees = forest.shared().size();
  stats.references = forest.reference_count();

  // Carry the baseline's memoized shared-subtree serializations over where
  // the subtree survived the splice untouched (ids included — see
  // SubtreeIdentical). The seeded catalog serves them from cache; everything
  // else recomputes lazily.
  RecompileCounters local;
  RecompileCounters& c = counters != nullptr ? *counters : local;
  c.subtrees_total = forest.shared().size();
  c.subtrees_reused = 0;
  std::vector<const std::string*> seeds(forest.shared().size(), nullptr);
  const topo::Forest& baseline_forest = baseline.catalog().forest();
  const size_t comparable = std::min(forest.shared().size(), baseline_forest.shared().size());
  for (size_t s = 0; s < comparable; ++s) {
    if (SubtreeIdentical(baseline.dag(), baseline_forest.shared()[s], *model->dag_,
                         forest.shared()[s])) {
      seeds[s] = &baseline.catalog().SubtreeText(static_cast<int>(s));
      ++c.subtrees_reused;
    }
  }
  model->catalog_ = std::make_unique<desc::TopologyCatalog>(
      model->dag_.get(), std::move(forest), options.prune, options.describe, seeds);
  stats.core_nodes = model->catalog_->core_stats().kept;
  stats.core_tokens = model->catalog_->CoreTokens();
  stats.full_tokens = model->catalog_->FullTokens();
  model->usage_hint_tokens_ = textutil::CountTokens(UsageHint());
  const std::string& core = model->catalog_->CoreText();
  model->static_prompt_.reserve(UsageHint().size() + core.size());
  model->static_prompt_ = UsageHint();
  model->static_prompt_ += core;
  model->static_prompt_tokens_ = model->usage_hint_tokens_ + model->catalog_->CoreTokens();
  support::CountMetric("model.builds");
  support::CountMetric("model.delta_builds");
  support::CountMetric("model.recompile_subtrees_reused", c.subtrees_reused);
  support::ObserveMetric("model.recompile_ms",
                         static_cast<double>(support::TraceNowUs() - build_start_us) / 1000.0);
  span.AddArg("subtrees_reused", static_cast<int64_t>(c.subtrees_reused));
  return model;
}

std::shared_ptr<const CompiledModel> CompiledModel::FromLoadedParts(LoadedParts parts) {
  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->options_ = std::move(parts.options);
  model->stats_ = parts.stats;
  model->dag_ = std::move(parts.dag);
  model->catalog_ = std::move(parts.catalog);
  model->usage_hint_tokens_ = parts.usage_hint_tokens;
  model->static_prompt_ = std::move(parts.static_prompt);
  model->static_prompt_tokens_ = parts.static_prompt_tokens;
  model->subtree_checksums_ = std::move(parts.subtree_checksums);
  // A loaded model is a model the process did *not* build: model.builds and
  // session.compile_builds stay untouched so the amortization accounting
  // (DESIGN.md §10) keeps meaning "pipeline runs", not "models in memory".
  support::CountMetric("model.artifact_loads");
  return model;
}

support::Result<ResolvedTarget> CompiledModel::ResolveTargetByNames(
    const std::vector<std::string>& names) const {
  support::CountMetric("describe.resolve_calls");
  if (names.empty()) {
    return support::InvalidArgumentError("empty name chain");
  }
  const topo::Forest& forest = catalog_->forest();
  const topo::NavGraph& dag = *dag_;

  // Direct references pointing at a shared subtree come from the forest's
  // precomputed reverse-reference index (built at SelectiveExternalize time)
  // instead of rescanning every tree per candidate.

  // Builds a full ref chain starting from one direct ref (greedy upward).
  auto chain_for = [&](int ref) -> std::vector<int> {
    std::vector<int> chain = {ref};
    int cursor = ref;
    for (int hop = 0; hop < 16; ++hop) {
      auto loc = forest.LocateById(cursor);
      if (!loc.ok() || loc->tree < 0) {
        return chain;
      }
      const std::vector<int>& outer = forest.RefsTo(loc->tree);
      if (outer.empty()) {
        return {};
      }
      chain.push_back(outer[0]);
      cursor = outer[0];
    }
    return {};
  };

  // Ordered-subsequence match of `names` against a path's node names.
  auto matches = [&](const std::vector<int>& path) {
    size_t want = 0;
    for (int node : path) {
      if (want < names.size() && dag.node(node).name == names[want]) {
        ++want;
      }
    }
    return want == names.size();
  };

  ResolvedTarget best;
  int best_path_len = INT32_MAX;
  size_t candidates = 0;
  for (int id : forest.AllIds()) {
    const topo::TreeNode* node = forest.FindById(id);
    if (node->is_reference) {
      continue;
    }
    if (dag.node(node->graph_index).name != names.back()) {
      continue;
    }
    ++candidates;
    auto loc = forest.LocateById(id);
    std::vector<std::vector<int>> ref_options;
    if (loc->tree < 0) {
      ref_options.push_back({});
    } else {
      for (int ref : forest.RefsTo(loc->tree)) {
        std::vector<int> chain = chain_for(ref);
        if (!chain.empty()) {
          ref_options.push_back(std::move(chain));
        }
      }
    }
    for (const std::vector<int>& refs : ref_options) {
      auto path = forest.ResolvePath(id, refs);
      if (!path.ok() || !matches(*path)) {
        continue;
      }
      if (static_cast<int>(path->size()) < best_path_len) {
        best_path_len = static_cast<int>(path->size());
        best.id = id;
        best.entry_ref_ids = refs;
      }
    }
  }
  support::ObserveMetric("describe.resolve_candidates", static_cast<double>(candidates));
  if (best.id < 0) {
    return support::NotFoundError("no control matches the name chain ending in '" +
                                  names.back() + "'");
  }
  return best;
}

}  // namespace dmi
