#include "src/dmi/session.h"

#include <algorithm>
#include <utility>

#include "src/json/json.h"
#include "src/support/binio.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/text/tokens.h"

namespace dmi {
namespace {

// Dynamic-segment headers. Both start or end on a newline, so the
// segment-split token counts below sum exactly to the concatenation's count
// (see textutil::CountTokensAppend).
constexpr char kScreenHeader[] = "\n# Current screen\n";
constexpr char kDataHeader[] = "# Data items\n";

support::Counter& PromptCacheHits() {
  static support::Counter& hits =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_hits");
  return hits;
}

support::Counter& PromptCacheMisses() {
  static support::Counter& misses =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_misses");
  return misses;
}

}  // namespace

std::string PromptView::Assemble() const {
  std::string out;
  out.reserve(static_text->size() + dynamic_text->size());
  out += *static_text;
  out += *dynamic_text;
  return out;
}

std::unique_ptr<DmiSession> DmiSession::Model(gsim::Application& app,
                                              const ModelingOptions& options) {
  support::TraceSpan span("model.rip", "model");
  ripper::GuiRipper rip(app, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  span.AddArg("ripped_nodes", static_cast<int64_t>(graph.node_count()));
  auto session = std::make_unique<DmiSession>(app, graph, options);
  session->stats_.rip = rip.stats();
  return session;
}

DmiSession::DmiSession(gsim::Application& app, const topo::NavGraph& graph,
                       const ModelingOptions& options)
    : DmiSession(app, CompiledModel::Compile(graph, options),
                 SessionOptions{options.visit, options.interaction}) {}

DmiSession::DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model)
    : DmiSession(app, model,
                 SessionOptions{model->options().visit, model->options().interaction}) {}

DmiSession::DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model,
                       const SessionOptions& options)
    : app_(&app),
      model_(std::move(model)),
      stats_(model_->stats()),
      screen_(app),
      executor_(std::make_unique<VisitExecutor>(app, model_->catalog(), options.visit)),
      interaction_(app, screen_, options.interaction) {
  support::CountMetric("session.compile_attach");
  screen_.Refresh();
}

VisitReport DmiSession::Visit(const std::string& json_commands) {
  VisitReport report = executor_->Execute(json_commands);
  screen_.Refresh();
  return report;
}

VisitReport DmiSession::VisitParsed(std::vector<VisitCommand> commands) {
  VisitReport report = executor_->ExecuteParsed(std::move(commands));
  screen_.Refresh();
  return report;
}

PromptView DmiSession::Prompt() {
  const uint64_t generation = app_->ui_generation();
  if (prompt_cache_.text_valid && prompt_cache_.generation == generation) {
    PromptCacheHits().Increment();
  } else {
    PromptCacheMisses().Increment();
    // Only the screen/data segment depends on live UI state; the static
    // segment (usage hint + core topology) is shared on the CompiledModel.
    // Refresh() recomputes layout but never bumps the generation, so the
    // stamp taken above stays valid for the rebuilt cache entry.
    screen_.Refresh();
    std::string dynamic = kScreenHeader;
    dynamic += screen_.RenderListing();
    const std::string payload = interaction_.GetTextsPassive();
    if (!payload.empty()) {
      dynamic += kDataHeader;
      dynamic += payload;
    }
    size_t tokens = 0;
    textutil::CountTokensAppend(dynamic, &tokens);
    prompt_cache_.dynamic = std::move(dynamic);
    prompt_cache_.dynamic_tokens = tokens;
    prompt_cache_.generation = generation;
    prompt_cache_.tokens_valid = true;
    prompt_cache_.text_valid = true;
  }
  return PromptView{&model_->static_prompt(), &prompt_cache_.dynamic,
                    model_->static_prompt_tokens() + prompt_cache_.dynamic_tokens};
}

std::string DmiSession::BuildPromptContext() { return Prompt().Assemble(); }

std::string DmiSession::BuildPromptContextUncached() {
  screen_.Refresh();
  std::string out = CompiledModel::UsageHint();
  out += model_->catalog().CoreText();
  out += "\n# Current screen\n";
  out += screen_.RenderListing();
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    out += "# Data items\n";
    out += payload;
  }
  return out;
}

size_t DmiSession::PromptTokens() {
  const uint64_t generation = app_->ui_generation();
  if (prompt_cache_.tokens_valid && prompt_cache_.generation == generation) {
    PromptCacheHits().Increment();
    return model_->static_prompt_tokens() + prompt_cache_.dynamic_tokens;
  }
  PromptCacheMisses().Increment();
  // Count-only rebuild: streams each dynamic piece through the token counter
  // without concatenating them (every split point falls on a newline, so the
  // segment sums are exact). The text cache stays unset — a later Prompt()
  // call materializes the dynamic segment if anyone needs the bytes.
  screen_.Refresh();
  size_t tokens = 0;
  textutil::CountTokensAppend(kScreenHeader, &tokens);
  textutil::CountTokensAppend(screen_.RenderListing(), &tokens);
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    textutil::CountTokensAppend(kDataHeader, &tokens);
    textutil::CountTokensAppend(payload, &tokens);
  }
  prompt_cache_.dynamic.clear();
  prompt_cache_.dynamic_tokens = tokens;
  prompt_cache_.generation = generation;
  prompt_cache_.tokens_valid = true;
  prompt_cache_.text_valid = false;
  return model_->static_prompt_tokens() + tokens;
}

support::Status DmiSession::SaveModel(const topo::NavGraph& graph, const std::string& path) {
  return support::WriteFileBytes(path, graph.ToJson().Dump());
}

support::Result<topo::NavGraph> DmiSession::LoadModel(const std::string& path) {
  // ReadFileBytes surfaces every stdio failure mode (open, ferror mid-read,
  // short read) as a typed status naming the path; the old hand-rolled loop
  // treated a mid-file I/O error as EOF and parsed the truncated prefix.
  support::Result<std::string> json = support::ReadFileBytes(path);
  if (!json.ok()) {
    return json.status();
  }
  auto doc = jsonv::Parse(*json);
  if (!doc.ok()) {
    return doc.status();
  }
  return topo::NavGraph::FromJson(*doc);
}

support::Result<ResolvedTarget> DmiSession::ResolveTargetByNames(
    const std::vector<std::string>& names) {
  return model_->ResolveTargetByNames(names);
}

}  // namespace dmi
