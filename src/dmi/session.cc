#include "src/dmi/session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/json/json.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/text/tokens.h"

namespace dmi {

std::unique_ptr<DmiSession> DmiSession::Model(gsim::Application& app,
                                              const ModelingOptions& options) {
  support::TraceSpan span("model.rip", "model");
  ripper::GuiRipper rip(app, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  span.AddArg("ripped_nodes", static_cast<int64_t>(graph.node_count()));
  auto session = std::make_unique<DmiSession>(app, graph, options);
  session->stats_.rip = rip.stats();
  return session;
}

DmiSession::DmiSession(gsim::Application& app, const topo::NavGraph& graph,
                       const ModelingOptions& options)
    : DmiSession(app, CompiledModel::Compile(graph, options),
                 SessionOptions{options.visit, options.interaction}) {}

DmiSession::DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model)
    : DmiSession(app, model,
                 SessionOptions{model->options().visit, model->options().interaction}) {}

DmiSession::DmiSession(gsim::Application& app, std::shared_ptr<const CompiledModel> model,
                       const SessionOptions& options)
    : app_(&app),
      model_(std::move(model)),
      stats_(model_->stats()),
      screen_(app),
      executor_(std::make_unique<VisitExecutor>(app, model_->catalog(), options.visit)),
      interaction_(app, screen_, options.interaction) {
  support::CountMetric("session.compile_attach");
  screen_.Refresh();
}

VisitReport DmiSession::Visit(const std::string& json_commands) {
  VisitReport report = executor_->Execute(json_commands);
  screen_.Refresh();
  return report;
}

VisitReport DmiSession::VisitParsed(std::vector<VisitCommand> commands) {
  VisitReport report = executor_->ExecuteParsed(std::move(commands));
  screen_.Refresh();
  return report;
}

const std::string& DmiSession::BuildPromptContext() {
  static support::Counter& hits =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_hits");
  static support::Counter& misses =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_misses");
  const uint64_t generation = app_->ui_generation();
  if (prompt_cache_.valid && prompt_cache_.generation == generation) {
    hits.Increment();
    return prompt_cache_.prompt;
  }
  misses.Increment();
  // Only the screen/data segment depends on live UI state; the usage hint and
  // core topology are static, so their text and token counts come cached.
  // Refresh() recomputes layout but never bumps the generation, so the stamp
  // taken above stays valid for the rebuilt cache entry.
  screen_.Refresh();
  std::string dynamic = "\n# Current screen\n";
  dynamic += screen_.RenderListing();
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    dynamic += "# Data items\n";
    dynamic += payload;
  }
  const std::string& hint = CompiledModel::UsageHint();
  const std::string& core = model_->catalog().CoreText();
  // Segment sums match the concatenated count because every join point falls
  // on a newline (see textutil::CountTokensAppend).
  size_t tokens = model_->usage_hint_tokens() + model_->catalog().CoreTokens();
  textutil::CountTokensAppend(dynamic, &tokens);
  std::string out;
  out.reserve(hint.size() + core.size() + dynamic.size());
  out += hint;
  out += core;
  out += dynamic;
  prompt_cache_.prompt = std::move(out);
  prompt_cache_.tokens = tokens;
  prompt_cache_.generation = generation;
  prompt_cache_.valid = true;
  return prompt_cache_.prompt;
}

std::string DmiSession::BuildPromptContextUncached() {
  screen_.Refresh();
  std::string out = CompiledModel::UsageHint();
  out += model_->catalog().CoreText();
  out += "\n# Current screen\n";
  out += screen_.RenderListing();
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    out += "# Data items\n";
    out += payload;
  }
  return out;
}

size_t DmiSession::PromptTokens() {
  (void)BuildPromptContext();
  return prompt_cache_.tokens;
}

support::Status DmiSession::SaveModel(const topo::NavGraph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return support::InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  const std::string json = graph.ToJson().Dump();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return support::InternalError("short write to '" + path + "'");
  }
  return support::Status::Ok();
}

support::Result<topo::NavGraph> DmiSession::LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return support::NotFoundError("cannot open model file '" + path + "'");
  }
  std::string json;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    json.append(buffer, n);
  }
  std::fclose(f);
  auto doc = jsonv::Parse(json);
  if (!doc.ok()) {
    return doc.status();
  }
  return topo::NavGraph::FromJson(*doc);
}

support::Result<ResolvedTarget> DmiSession::ResolveTargetByNames(
    const std::vector<std::string>& names) {
  return model_->ResolveTargetByNames(names);
}

}  // namespace dmi
