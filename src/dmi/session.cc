#include "src/dmi/session.h"

#include <algorithm>
#include <cstdio>

#include "src/describe/augment.h"
#include "src/json/json.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/text/tokens.h"

namespace dmi {
namespace {

// Instruction header included in every prompt (counts toward DMI's token
// overhead, §5.4).
constexpr char kUsageHint[] =
    "# DMI usage\n"
    "Prefer DMI. visit([...]) accesses target controls by id; declare only\n"
    "functional (leaf) targets — DMI performs all navigation. Targets inside\n"
    "shared subtrees need entry_ref_id. {\"id\",\"text\"} types into an edit.\n"
    "{\"shortcut_key\"} is auxiliary (e.g. ENTER to commit). further_query(id|-1)\n"
    "fetches more topology and cannot be mixed with other commands. For\n"
    "composite interactions use state declarations (set_scrollbar_pos,\n"
    "select_lines, select_paragraphs, select_controls, set_toggle_state) and\n"
    "observation (get_texts) on current-screen labels, never topology ids.\n";

}  // namespace

std::unique_ptr<DmiSession> DmiSession::Model(gsim::Application& app,
                                              const ModelingOptions& options) {
  support::TraceSpan span("model.rip", "model");
  ripper::GuiRipper rip(app, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  span.AddArg("ripped_nodes", static_cast<int64_t>(graph.node_count()));
  auto session = std::make_unique<DmiSession>(app, std::move(graph), options);
  session->stats_.rip = rip.stats();
  return session;
}

DmiSession::DmiSession(gsim::Application& app, topo::NavGraph graph,
                       const ModelingOptions& options)
    : app_(&app), screen_(app), interaction_(app, screen_, options.interaction) {
  FinishConstruction(options, std::move(graph));
}

void DmiSession::FinishConstruction(const ModelingOptions& options, topo::NavGraph graph) {
  support::TraceSpan span("model.build", "model");
  const int64_t build_start_us = support::TraceNowUs();
  if (options.augment_descriptions) {
    (void)desc::AugmentDescriptions(graph, desc::BuiltinAugmentRules());
  }
  stats_.raw = graph.ComputeStats();
  topo::DecycleResult decycled = topo::Decycle(graph);
  stats_.back_edges_removed = decycled.removed_back_edges;
  stats_.unreachable_dropped = decycled.unreachable_dropped;
  dag_ = std::make_unique<topo::NavGraph>(std::move(decycled.dag));
  topo::Forest forest = topo::SelectiveExternalize(*dag_, options.externalize_threshold);
  stats_.forest_nodes = forest.total_nodes();
  stats_.shared_subtrees = forest.shared().size();
  stats_.references = forest.reference_count();
  catalog_ = std::make_unique<desc::TopologyCatalog>(dag_.get(), std::move(forest),
                                                     options.prune, options.describe);
  stats_.core_nodes = catalog_->core_stats().kept;
  stats_.core_tokens = catalog_->CoreTokens();
  stats_.full_tokens = catalog_->FullTokens();
  executor_ = std::make_unique<VisitExecutor>(*app_, *catalog_, options.visit);
  usage_hint_tokens_ = textutil::CountTokens(kUsageHint);
  screen_.Refresh();
  // Mirror the modeling summary onto the registry (ModelingStats remains the
  // per-session record; the registry is the process-wide aggregate).
  support::CountMetric("model.builds");
  support::CountMetric("model.raw_nodes", stats_.raw.nodes);
  support::CountMetric("model.core_nodes", stats_.core_nodes);
  support::CountMetric("model.core_tokens", stats_.core_tokens);
  support::CountMetric("model.full_tokens", stats_.full_tokens);
  support::ObserveMetric("model.build_ms",
                         static_cast<double>(support::TraceNowUs() - build_start_us) / 1000.0);
  span.AddArg("core_nodes", static_cast<int64_t>(stats_.core_nodes));
  span.AddArg("core_tokens", static_cast<int64_t>(stats_.core_tokens));
}

VisitReport DmiSession::Visit(const std::string& json_commands) {
  VisitReport report = executor_->Execute(json_commands);
  screen_.Refresh();
  return report;
}

VisitReport DmiSession::VisitParsed(std::vector<VisitCommand> commands) {
  VisitReport report = executor_->ExecuteParsed(std::move(commands));
  screen_.Refresh();
  return report;
}

const std::string& DmiSession::BuildPromptContext() {
  static support::Counter& hits =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_hits");
  static support::Counter& misses =
      support::MetricsRegistry::Global().GetCounter("describe.prompt_cache_misses");
  const uint64_t generation = app_->ui_generation();
  if (prompt_cache_.valid && prompt_cache_.generation == generation) {
    hits.Increment();
    return prompt_cache_.prompt;
  }
  misses.Increment();
  // Only the screen/data segment depends on live UI state; the usage hint and
  // core topology are static, so their text and token counts come cached.
  // Refresh() recomputes layout but never bumps the generation, so the stamp
  // taken above stays valid for the rebuilt cache entry.
  screen_.Refresh();
  std::string dynamic = "\n# Current screen\n";
  dynamic += screen_.RenderListing();
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    dynamic += "# Data items\n";
    dynamic += payload;
  }
  const std::string& core = catalog_->CoreText();
  // Segment sums match the concatenated count because every join point falls
  // on a newline (see textutil::CountTokensAppend).
  size_t tokens = usage_hint_tokens_ + catalog_->CoreTokens();
  textutil::CountTokensAppend(dynamic, &tokens);
  std::string out;
  out.reserve(sizeof(kUsageHint) + core.size() + dynamic.size());
  out += kUsageHint;
  out += core;
  out += dynamic;
  prompt_cache_.prompt = std::move(out);
  prompt_cache_.tokens = tokens;
  prompt_cache_.generation = generation;
  prompt_cache_.valid = true;
  return prompt_cache_.prompt;
}

std::string DmiSession::BuildPromptContextUncached() {
  screen_.Refresh();
  std::string out = kUsageHint;
  out += catalog_->CoreText();
  out += "\n# Current screen\n";
  out += screen_.RenderListing();
  const std::string payload = interaction_.GetTextsPassive();
  if (!payload.empty()) {
    out += "# Data items\n";
    out += payload;
  }
  return out;
}

size_t DmiSession::PromptTokens() {
  (void)BuildPromptContext();
  return prompt_cache_.tokens;
}

support::Status DmiSession::SaveModel(const topo::NavGraph& graph, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return support::InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  const std::string json = graph.ToJson().Dump();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return support::InternalError("short write to '" + path + "'");
  }
  return support::Status::Ok();
}

support::Result<topo::NavGraph> DmiSession::LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return support::NotFoundError("cannot open model file '" + path + "'");
  }
  std::string json;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    json.append(buffer, n);
  }
  std::fclose(f);
  auto doc = jsonv::Parse(json);
  if (!doc.ok()) {
    return doc.status();
  }
  return topo::NavGraph::FromJson(*doc);
}

support::Result<ResolvedTarget> DmiSession::ResolveTargetByNames(
    const std::vector<std::string>& names) {
  support::CountMetric("describe.resolve_calls");
  if (names.empty()) {
    return support::InvalidArgumentError("empty name chain");
  }
  const topo::Forest& forest = catalog_->forest();
  const topo::NavGraph& dag = *dag_;

  // Direct references pointing at a shared subtree come from the forest's
  // precomputed reverse-reference index (built at SelectiveExternalize time)
  // instead of rescanning every tree per candidate.

  // Builds a full ref chain starting from one direct ref (greedy upward).
  auto chain_for = [&](int ref) -> std::vector<int> {
    std::vector<int> chain = {ref};
    int cursor = ref;
    for (int hop = 0; hop < 16; ++hop) {
      auto loc = forest.LocateById(cursor);
      if (!loc.ok() || loc->tree < 0) {
        return chain;
      }
      const std::vector<int>& outer = forest.RefsTo(loc->tree);
      if (outer.empty()) {
        return {};
      }
      chain.push_back(outer[0]);
      cursor = outer[0];
    }
    return {};
  };

  // Ordered-subsequence match of `names` against a path's node names.
  auto matches = [&](const std::vector<int>& path) {
    size_t want = 0;
    for (int node : path) {
      if (want < names.size() && dag.node(node).name == names[want]) {
        ++want;
      }
    }
    return want == names.size();
  };

  ResolvedTarget best;
  int best_path_len = INT32_MAX;
  size_t candidates = 0;
  for (int id : forest.AllIds()) {
    const topo::TreeNode* node = forest.FindById(id);
    if (node->is_reference) {
      continue;
    }
    if (dag.node(node->graph_index).name != names.back()) {
      continue;
    }
    ++candidates;
    auto loc = forest.LocateById(id);
    std::vector<std::vector<int>> ref_options;
    if (loc->tree < 0) {
      ref_options.push_back({});
    } else {
      for (int ref : forest.RefsTo(loc->tree)) {
        std::vector<int> chain = chain_for(ref);
        if (!chain.empty()) {
          ref_options.push_back(std::move(chain));
        }
      }
    }
    for (const std::vector<int>& refs : ref_options) {
      auto path = forest.ResolvePath(id, refs);
      if (!path.ok() || !matches(*path)) {
        continue;
      }
      if (static_cast<int>(path->size()) < best_path_len) {
        best_path_len = static_cast<int>(path->size());
        best.id = id;
        best.entry_ref_ids = refs;
      }
    }
  }
  support::ObserveMetric("describe.resolve_candidates", static_cast<double>(candidates));
  if (best.id < 0) {
    return support::NotFoundError("no control matches the name chain ending in '" +
                                  names.back() + "'");
  }
  return best;
}

}  // namespace dmi
