#include "src/dmi/service_config.h"

#include <cstdlib>

namespace dmi {
namespace {

bool ParseInt(const std::string& value, int* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseInt64(const std::string& value, int64_t* out) {
  if (value.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<int64_t>(parsed);
  return true;
}

bool ParseUint64(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-') {
    return false;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "on") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "off") {
    *out = false;
    return true;
  }
  return false;
}

support::Status BadValue(const std::string& flag, const std::string& value) {
  return support::InvalidArgumentError("flag " + flag + ": bad value '" + value + "'");
}

bool OneOf(const std::string& value, std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (value == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool ServiceConfig::ApplyFlag(const std::string& flag, const std::string& value,
                              support::Status* error) {
  *error = support::Status::Ok();
  if (flag == "--mode") {
    mode = value;
  } else if (flag == "--model") {
    model = value;
  } else if (flag == "--policy") {
    policy = value;
  } else if (flag == "--instability") {
    instability = value;
  } else if (flag == "--seed") {
    if (!ParseUint64(value, &seed)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--repeats") {
    if (!ParseInt(value, &repeats)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--step-cap") {
    if (!ParseInt(value, &step_cap)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--workers") {
    if (!ParseInt(value, &workers)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--batch") {
    if (!ParseInt(value, &batch_size)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--pool-apps") {
    if (!ParseBool(value, &pool_apps)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--model-dir") {
    model_dir = value;
  } else if (flag == "--app-version") {
    app_version = value;
  } else if (flag == "--flight-recorder") {
    if (!ParseInt(value, &flight_recorder_events)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--max-in-flight") {
    if (!ParseInt(value, &max_in_flight)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--queue") {
    if (!ParseInt(value, &queue_capacity)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--tenant-concurrent") {
    if (!ParseInt(value, &tenant_max_concurrent)) {
      *error = BadValue(flag, value);
    }
  } else if (flag == "--tenant-tokens") {
    if (!ParseInt64(value, &tenant_token_budget)) {
      *error = BadValue(flag, value);
    }
  } else {
    return false;
  }
  return true;
}

support::Status ServiceConfig::Validate() const {
  if (!OneOf(mode, {"gui", "forest", "dmi"})) {
    return support::InvalidArgumentError("mode: '" + mode +
                                         "' is not one of gui|forest|dmi");
  }
  if (!OneOf(model, {"gpt5", "gpt5min", "mini"})) {
    return support::InvalidArgumentError("model: '" + model +
                                         "' is not one of gpt5|gpt5min|mini");
  }
  if (!policy.empty() && !OneOf(policy, {"none", "typical", "harsh", "hostile"})) {
    return support::InvalidArgumentError(
        "policy: '" + policy + "' is not one of none|typical|harsh|hostile");
  }
  if (!instability.empty() &&
      !OneOf(instability, {"none", "typical", "harsh", "hostile"})) {
    return support::InvalidArgumentError(
        "instability: '" + instability + "' is not one of none|typical|harsh|hostile");
  }
  if (repeats <= 0) {
    return support::InvalidArgumentError("repeats: must be positive");
  }
  if (step_cap <= 0) {
    return support::InvalidArgumentError("step_cap: must be positive");
  }
  if (workers < 0) {
    return support::InvalidArgumentError("workers: must be >= 0 (0 = hardware threads)");
  }
  if (batch_size < 0) {
    return support::InvalidArgumentError("batch_size: must be >= 0 (0 = batching off)");
  }
  if (flight_recorder_events < 0) {
    return support::InvalidArgumentError("flight_recorder_events: must be >= 0");
  }
  if (max_in_flight <= 0) {
    return support::InvalidArgumentError("max_in_flight: must be positive");
  }
  if (queue_capacity < 0) {
    return support::InvalidArgumentError("queue_capacity: must be >= 0");
  }
  if (tenant_max_concurrent < 0) {
    return support::InvalidArgumentError("tenant_max_concurrent: must be >= 0");
  }
  if (tenant_token_budget < 0) {
    return support::InvalidArgumentError("tenant_token_budget: must be >= 0");
  }
  return support::Status::Ok();
}

}  // namespace dmi
