// State and observation declarations (paper §3.5, Table 2).
//
// These interfaces wrap UIA control patterns so the LLM specifies the desired
// *end state* instead of performing composite interactions:
//   set_scrollbar_pos  (ScrollPattern)        scrollbar position to x%/y%
//   select_lines       (TextPattern)          contiguous line range
//   select_paragraphs  (TextPattern)          contiguous paragraph range
//   select_controls    (SelectionItemPattern) single/multi control selection
//   set_toggle_state   (TogglePattern)        checkbox on/off
//   set_expanded       (ExpandCollapsePattern)
//   get_texts          (Text & Value)         structured text retrieval
//
// Two contract rules from the paper:
//   - controls are addressed by their *label on the current screen's
//     accessibility tree*, never by static topology ids (§3.5 "Separating
//     control access and complex interactions");
//   - conservative execution: if any addressed control lacks the required
//     pattern, nothing executes and a structured error returns (§4.4).
#ifndef SRC_DMI_INTERACTION_H_
#define SRC_DMI_INTERACTION_H_

#include <functional>
#include <string>
#include <vector>

#include "src/gui/application.h"
#include "src/gui/screen.h"
#include "src/support/retry.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace dmi {

// Structured status returned by scroll declarations (§4.4 "The executor
// returns a structured status").
struct ScrollStatus {
  double horizontal_percent = -1.0;
  double vertical_percent = -1.0;
  std::string ToString() const;
};

struct SelectionStatus {
  int start = -1;
  int end = -1;
  std::string selected_text;  // the text now selected
};

struct InteractionConfig {
  // Passive get_texts truncation per item, in approximate tokens.
  size_t passive_item_token_cap = 12;
  // Cap on the number of items in the passive payload.
  size_t passive_item_limit = 600;
  // Typed retry schedule for *retryable* pattern-call failures (transient
  // pattern windows, app freezes — DESIGN.md §11). Unset by default: state
  // declarations fail fast exactly as before.
  support::RetryPolicy retry;
};

class InteractionInterfaces {
 public:
  InteractionInterfaces(gsim::Application& app, gsim::ScreenView& screen,
                        InteractionConfig config = {});

  // ----- state declarations --------------------------------------------------
  support::Result<ScrollStatus> SetScrollbarPos(const std::string& label,
                                                double x_percent, double y_percent);
  support::Result<SelectionStatus> SelectLines(const std::string& label, int start, int end);
  support::Result<SelectionStatus> SelectParagraphs(const std::string& label, int start,
                                                    int end);
  // Selects all listed controls (first exclusive, rest additive). Verifies
  // every control supports SelectionItemPattern before touching any.
  support::Status SelectControls(const std::vector<std::string>& labels);
  support::Status SetToggleState(const std::string& label, bool on);
  // set_texts (Table 2: "set_texts builds on TextPattern"/ValuePattern):
  // declaratively sets an edit control's content, regardless of its current
  // value or focus state.
  support::Status SetTexts(const std::string& label, const std::string& text);
  // set_range_value (RangeValuePattern): sliders, spinners — declaratively
  // jump to the target value instead of incrementing.
  support::Status SetRangeValue(const std::string& label, double value);
  support::Status SetExpanded(const std::string& label, bool expanded);

  // ----- observation declarations ---------------------------------------------
  // Active mode: the full text/value of one control.
  support::Result<std::string> GetTextsActive(const std::string& label);
  // Passive mode: a truncated, structured payload of every visible DataItem
  // control, with empty values coalesced; prepended to each LLM prompt.
  std::string GetTextsPassive() const;

  // Reseeds the backoff-jitter RNG (deterministic per run seed; only drawn
  // when the retry policy carries jitter > 0).
  void SeedRetryRng(uint64_t seed) { retry_rng_ = support::Rng(seed); }

 private:
  support::Result<gsim::Control*> Resolve(const std::string& label) const;

  // Runs `op`; on a retryable failure, re-runs it under config_.retry with
  // tick backoff. No-op wrapper when the policy is unset (the default).
  support::Status RetryTransient(const std::function<support::Status()>& op);

  gsim::Application* app_;
  gsim::ScreenView* screen_;
  InteractionConfig config_;
  support::Rng retry_rng_{0xc4ceb9fe1a85ec53ULL};
};

}  // namespace dmi

#endif  // SRC_DMI_INTERACTION_H_
