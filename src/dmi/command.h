// The visit interface's command language (paper §3.4).
//
// visit accepts a JSON array of structured commands, executed sequentially in
// a single call:
//   {"id": "<target_id>"}                                  control access
//   {"id": "<target_id>", "entry_ref_id": ["<ref_id>"]}    access in shared subtree
//   {"id": "<target_id>", "text": "<text>"}                access-and-input
//   {"id": "<target_id>", "enforced": true}                bypass non-leaf filter
//   {"shortcut_key": "<key_combination>"}                  auxiliary shortcut
//   {"further_query": <id> | -1}                           topology query
// FurtherQuery is exclusive: it cannot be mixed with other commands.
#ifndef SRC_DMI_COMMAND_H_
#define SRC_DMI_COMMAND_H_

#include <string>
#include <vector>

#include "src/support/status.h"

namespace dmi {

struct VisitCommand {
  enum class Kind { kAccess, kAccessInput, kShortcut, kFurtherQuery };

  Kind kind = Kind::kAccess;
  int target_id = -1;
  std::vector<int> entry_ref_ids;
  std::string text;          // access-and-input payload
  std::string shortcut_key;  // shortcut commands
  int further_query = 0;     // node id, or -1 for the complete forest
  // Bypasses non-leaf filtering for navigation nodes that are genuinely
  // functional (selecting a slide thumbnail, selecting a shape) — the
  // "enforced parameter" alternative the paper proposes in §5.7.
  bool enforced = false;

  std::string ToString() const;
};

// Parses the JSON command array. Ids are accepted as strings or integers
// (LLMs emit both). Enforces the further_query exclusivity rule.
support::Result<std::vector<VisitCommand>> ParseVisitCommands(const std::string& json);

}  // namespace dmi

#endif  // SRC_DMI_COMMAND_H_
