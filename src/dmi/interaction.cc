#include "src/dmi/interaction.h"

#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/text/tokens.h"
#include "src/uia/element.h"

namespace dmi {
namespace {

// Detail for a control that lacks the needed pattern: a capability mismatch,
// never transient.
support::ErrorDetail PatternDetail(const gsim::Control& control, const char* pattern) {
  support::ErrorDetail d;
  d.control_name = control.TrueName();
  d.required_pattern = pattern;
  d.retryable = false;
  d.attempts = 1;
  return d;
}

}  // namespace

std::string ScrollStatus::ToString() const {
  return support::Format("scroll(h=%.1f%%, v=%.1f%%)", horizontal_percent, vertical_percent);
}

InteractionInterfaces::InteractionInterfaces(gsim::Application& app, gsim::ScreenView& screen,
                                             InteractionConfig config)
    : app_(&app), screen_(&screen), config_(config) {}

support::Result<gsim::Control*> InteractionInterfaces::Resolve(
    const std::string& label) const {
  gsim::Control* control = screen_->FindByLabel(label);
  if (control == nullptr) {
    support::ErrorDetail d;
    d.control_name = label;
    d.retryable = false;
    d.attempts = 1;
    return support::NotFoundError("no control labeled '" + label +
                                  "' on the current screen")
        .WithDetail(std::move(d));
  }
  return control;
}

support::Status InteractionInterfaces::RetryTransient(
    const std::function<support::Status()>& op) {
  support::Status s = op();
  int attempt = 1;
  uint64_t backoff_total = 0;
  while (!s.ok() && support::IsRetryable(s) && config_.retry.ShouldRetry(attempt)) {
    support::CountMetric("robust.interaction_retries");
    const uint64_t backoff = config_.retry.BackoffTicks(attempt, retry_rng_);
    for (uint64_t t = 0; t < backoff; ++t) {
      app_->Tick();
    }
    backoff_total += backoff;
    ++attempt;
    s = op();
  }
  if (!s.ok()) {
    support::ErrorDetail d;
    if (s.has_detail()) {
      d = s.detail();
    }
    d.retryable = support::IsRetryable(s);
    d.attempts = attempt;
    d.backoff_ticks = backoff_total;
    s = support::Status(s.code(), s.message()).WithDetail(std::move(d));
  }
  return s;
}

support::Result<ScrollStatus> InteractionInterfaces::SetScrollbarPos(const std::string& label,
                                                                     double x_percent,
                                                                     double y_percent) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* scroll = uia::PatternCast<uia::ScrollPattern>(**control);
  if (scroll == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support ScrollPattern")
        .WithDetail(PatternDetail(**control, "ScrollPattern"));
  }
  const double h = x_percent < 0 ? uia::ScrollPattern::kNoScroll : x_percent;
  const double v = y_percent < 0 ? uia::ScrollPattern::kNoScroll : y_percent;
  support::Status s = RetryTransient([&]() {
    support::Status gate = app_->CheckPatternAvailable(**control, "ScrollPattern");
    if (!gate.ok()) {
      return gate;
    }
    return scroll->SetScrollPercent(h, v);
  });
  if (!s.ok()) {
    return s;
  }
  screen_->Refresh();
  ScrollStatus status;
  status.horizontal_percent = scroll->HorizontalPercent();
  status.vertical_percent = scroll->VerticalPercent();
  return status;
}

support::Result<SelectionStatus> InteractionInterfaces::SelectLines(const std::string& label,
                                                                    int start, int end) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* text = uia::PatternCast<uia::TextPattern>(**control);
  if (text == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support TextPattern")
        .WithDetail(PatternDetail(**control, "TextPattern"));
  }
  support::Status s =
      RetryTransient([&]() { return text->SelectRange(uia::TextUnit::kLine, start, end); });
  if (!s.ok()) {
    return s;
  }
  SelectionStatus status;
  status.start = start;
  status.end = end;
  status.selected_text = text->GetSelectedText();
  return status;
}

support::Result<SelectionStatus> InteractionInterfaces::SelectParagraphs(
    const std::string& label, int start, int end) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* text = uia::PatternCast<uia::TextPattern>(**control);
  if (text == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support TextPattern")
        .WithDetail(PatternDetail(**control, "TextPattern"));
  }
  support::Status s = RetryTransient(
      [&]() { return text->SelectRange(uia::TextUnit::kParagraph, start, end); });
  if (!s.ok()) {
    return s;
  }
  SelectionStatus status;
  status.start = start;
  status.end = end;
  status.selected_text = text->GetSelectedText();
  return status;
}

support::Status InteractionInterfaces::SelectControls(const std::vector<std::string>& labels) {
  if (labels.empty()) {
    return support::InvalidArgumentError("select_controls requires at least one label");
  }
  // Conservative execution (§4.4): verify every control first; only then act.
  std::vector<uia::SelectionItemPattern*> patterns;
  for (const std::string& label : labels) {
    auto control = Resolve(label);
    if (!control.ok()) {
      return control.status();
    }
    auto* sel = uia::PatternCast<uia::SelectionItemPattern>(**control);
    if (sel == nullptr) {
      return support::FailedPreconditionError(
                 "control '" + (*control)->TrueName() +
                 "' does not support SelectionItemPattern; nothing was executed")
          .WithDetail(PatternDetail(**control, "SelectionItemPattern"));
    }
    patterns.push_back(sel);
  }
  for (size_t i = 0; i < patterns.size(); ++i) {
    support::Status s = RetryTransient(
        [&]() { return i == 0 ? patterns[i]->Select() : patterns[i]->AddToSelection(); });
    if (!s.ok()) {
      return s;
    }
  }
  screen_->Refresh();
  return support::Status::Ok();
}

support::Status InteractionInterfaces::SetToggleState(const std::string& label, bool on) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* toggle = uia::PatternCast<uia::TogglePattern>(**control);
  if (toggle == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support TogglePattern")
        .WithDetail(PatternDetail(**control, "TogglePattern"));
  }
  const uia::ToggleState want = on ? uia::ToggleState::kOn : uia::ToggleState::kOff;
  if (toggle->State() == want) {
    return support::Status::Ok();  // declarative: already in the target state
  }
  support::Status s = RetryTransient([&]() { return toggle->Toggle(); });
  screen_->Refresh();
  return s;
}

support::Status InteractionInterfaces::SetTexts(const std::string& label,
                                                const std::string& text) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* value = uia::PatternCast<uia::ValuePattern>(**control);
  if (value == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support ValuePattern")
        .WithDetail(PatternDetail(**control, "ValuePattern"));
  }
  if (value->GetValue() == text) {
    return support::Status::Ok();  // declarative: already in the target state
  }
  support::Status s = RetryTransient([&]() { return value->SetValue(text); });
  screen_->Refresh();
  return s;
}

support::Status InteractionInterfaces::SetRangeValue(const std::string& label,
                                                     double value) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* range = uia::PatternCast<uia::RangeValuePattern>(**control);
  if (range == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support RangeValuePattern")
        .WithDetail(PatternDetail(**control, "RangeValuePattern"));
  }
  if (range->Value() == value) {
    return support::Status::Ok();  // declarative: already at the target
  }
  support::Status s = RetryTransient([&]() { return range->SetValue(value); });
  screen_->Refresh();
  return s;
}

support::Status InteractionInterfaces::SetExpanded(const std::string& label, bool expanded) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  auto* ec = uia::PatternCast<uia::ExpandCollapsePattern>(**control);
  if (ec == nullptr) {
    return support::FailedPreconditionError(
               "control '" + (*control)->TrueName() + "' does not support ExpandCollapsePattern")
        .WithDetail(PatternDetail(**control, "ExpandCollapsePattern"));
  }
  support::Status s = RetryTransient([&]() { return expanded ? ec->Expand() : ec->Collapse(); });
  screen_->Refresh();
  return s;
}

support::Result<std::string> InteractionInterfaces::GetTextsActive(const std::string& label) {
  auto control = Resolve(label);
  if (!control.ok()) {
    return control.status();
  }
  // TextPattern first, ValuePattern as fallback (§3.5: implemented on
  // TextPattern and ValuePattern; generalizes beyond DataItems).
  if (auto* text = uia::PatternCast<uia::TextPattern>(**control)) {
    return text->GetText();
  }
  if (auto* value = uia::PatternCast<uia::ValuePattern>(**control)) {
    return value->GetValue();
  }
  return support::FailedPreconditionError(
             "control '" + (*control)->TrueName() + "' supports neither Text nor Value pattern")
      .WithDetail(PatternDetail(**control, "TextPattern|ValuePattern"));
}

std::string InteractionInterfaces::GetTextsPassive() const {
  // Every visible DataItem's value, truncated; empty cells coalesce into one
  // summary line (paper §3.5 "Supporting precise perception by default").
  std::string out;
  size_t emitted = 0;
  size_t empty = 0;
  for (const gsim::LabeledControl& lc : screen_->labeled()) {
    if (lc.control->Type() != uia::ControlType::kDataItem) {
      continue;
    }
    auto* value = uia::PatternCast<uia::ValuePattern>(*lc.control);
    const std::string v = value != nullptr ? value->GetValue() : lc.control->text_value();
    if (v.empty()) {
      ++empty;
      continue;
    }
    if (emitted >= config_.passive_item_limit) {
      continue;
    }
    out += lc.label + " " + lc.control->TrueName() + "=" +
           textutil::TruncateToTokens(v, config_.passive_item_token_cap) + "\n";
    ++emitted;
  }
  if (empty > 0) {
    out += support::Format("(%zu data items are empty)\n", empty);
  }
  return out;
}

}  // namespace dmi
