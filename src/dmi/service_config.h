// dmi::ServiceConfig: the one validated configuration surface for every
// DMI front end (DESIGN.md §16).
//
// Historically each binary grew its own knob set: dmi_run accreted a dozen
// flags that it hand-mapped onto agentsim::RunConfig, dmi::Policy presets
// were applied imperatively, and the batching/worker/model-dir switches lived
// only in flag-parsing code. ServiceConfig consolidates all of it into one
// struct with one Validate(): both `dmi_run` and `dmi_serve` parse their
// command lines into a ServiceConfig (ApplyFlag handles the shared flag
// vocabulary), validate once, and hand the result to the agent layer, where
// agentsim::RunConfigFromService projects the legacy RunConfig view out of
// it. RunConfig itself is kept as that thin adapter target — new knobs land
// here first (see the deprecation note in DESIGN.md §16).
//
// The struct deliberately stores names (mode/model/policy presets) as
// validated strings rather than agent-layer enums so dmi_core stays
// independent of src/agent; Validate() is the single authority on the legal
// vocabulary and returns typed support::Status values (kInvalidArgument with
// the offending flag named) instead of exiting mid-parse.
#ifndef SRC_DMI_SERVICE_CONFIG_H_
#define SRC_DMI_SERVICE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/support/status.h"

namespace dmi {

struct ServiceConfig {
  // ----- interface / model ---------------------------------------------------
  std::string mode = "dmi";    // gui | forest | dmi
  std::string model = "gpt5";  // gpt5 | gpt5min | mini

  // ----- robustness policy ---------------------------------------------------
  // Preset name ("", none, typical, harsh, hostile). Empty = Typical
  // instability with no retry schedule (the legacy default posture).
  std::string policy;
  // Hazard-level override applied after the policy preset ("" = keep the
  // preset's level): none | typical | harsh | hostile.
  std::string instability;

  // ----- run shape -----------------------------------------------------------
  uint64_t seed = 1;
  int repeats = 3;
  int step_cap = 30;

  // ----- fleet / perf knobs --------------------------------------------------
  int workers = 1;     // suite worker threads; 0 = one per hardware thread
  int batch_size = 0;  // fleet batching max batch size; 0 = batching off
  bool pool_apps = true;

  // ----- model store ---------------------------------------------------------
  std::string model_dir;  // empty = no artifact store
  std::string app_version = "1";

  // ----- telemetry -----------------------------------------------------------
  int flight_recorder_events = 128;  // 0 disables the per-run recorder
  bool capture_report_json = false;

  // ----- serving knobs (dmi_serve only; ignored by batch front ends) ---------
  int max_in_flight = 4;     // concurrent sessions actually running
  int queue_capacity = 256;  // admitted-but-waiting sessions
  // Default per-tenant quotas applied to tenants without an explicit entry.
  // 0 = unlimited.
  int tenant_max_concurrent = 0;
  int64_t tenant_token_budget = 0;

  // Consumes one "--flag value" pair of the shared vocabulary. Returns false
  // when the flag is not a ServiceConfig flag (the caller then tries its
  // binary-local flags); returns true with *error set to a non-OK status when
  // the flag is recognized but the value is malformed. Vocabulary errors in
  // enum-like values (mode/model/policy names) are deferred to Validate() so
  // there is exactly one authority on legal names.
  bool ApplyFlag(const std::string& flag, const std::string& value,
                 support::Status* error);

  // Typed whole-config validation: kInvalidArgument naming the offending
  // field for vocabulary and range errors. Both binaries call this once after
  // parsing; everything downstream may assume a validated config.
  support::Status Validate() const;
};

}  // namespace dmi

#endif  // SRC_DMI_SERVICE_CONFIG_H_
