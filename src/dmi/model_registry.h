// ModelRegistry: process-wide memo of compiled models keyed by
// (app kind, app version), backed by the binary artifact store
// (DESIGN.md §14).
//
// Acquire() resolves a key through three tiers, cheapest first:
//   1. memo hit   — the model is already in this process; shared_ptr copy.
//   2. cold load  — a checksum-verified artifact exists in the model
//                   directory; read + index fixup, no pipeline stages.
//   3. compile    — the caller-supplied compile callback runs the full
//                   pipeline; the result is saved through to the store so
//                   every later process takes tier 2.
//
// Keys are strings (not workload::AppKind) so dmi_core stays independent of
// the workload layer; callers pass AppKindName(kind).
#ifndef SRC_DMI_MODEL_REGISTRY_H_
#define SRC_DMI_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/dmi/compiled_model.h"
#include "src/support/status.h"

namespace dmi {

class ModelRegistry {
 public:
  // `model_dir` is the artifact store; empty disables tiers 2/3's disk side
  // (the registry degrades to a pure in-process memo).
  explicit ModelRegistry(std::string model_dir = "") : model_dir_(std::move(model_dir)) {}

  // Runs the full modeling pipeline for a key on a registry miss. Returns
  // the freshly compiled model (never null on Ok).
  using CompileFn =
      std::function<support::Result<std::shared_ptr<const CompiledModel>>()>;

  // Returns the model for (app_kind, app_version), loading or compiling as
  // needed. Thread-safe; concurrent Acquire calls for the same key resolve
  // to the same shared instance, and the loser of a race never compiles
  // twice (the whole resolution runs under the registry lock — coarse, but
  // Acquire is a per-run, not per-step, operation).
  support::Result<std::shared_ptr<const CompiledModel>> Acquire(
      const std::string& app_kind, const std::string& app_version,
      const ModelingOptions& runtime_options, const CompileFn& compile);

  // "<model_dir>/<kind>-<version>.dmim"; empty when the registry has no
  // store.
  std::string ArtifactPath(const std::string& app_kind, const std::string& app_version) const;

  const std::string& model_dir() const { return model_dir_; }

  struct Stats {
    uint64_t memo_hits = 0;
    uint64_t artifact_loads = 0;
    uint64_t compiles = 0;
    uint64_t save_throughs = 0;
    // Artifacts present but rejected (corrupt, wrong identity, foreign
    // endianness, ...). Each falls back to a compile; the artifact is left
    // in place for inspection and overwritten by the save-through.
    uint64_t load_errors = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  const std::string model_dir_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, std::shared_ptr<const CompiledModel>> memo_;
  Stats stats_;
};

}  // namespace dmi

#endif  // SRC_DMI_MODEL_REGISTRY_H_
