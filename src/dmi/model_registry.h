// ModelRegistry: process-wide memo of compiled models keyed by
// (app kind, app version), backed by the binary artifact store
// (DESIGN.md §14).
//
// Acquire() resolves a key through three tiers, cheapest first:
//   1. memo hit   — the model is already in this process; shared_ptr copy.
//   2. cold load  — a checksum-verified artifact exists in the model
//                   directory; read + index fixup, no pipeline stages.
//   3. compile    — the caller-supplied compile callback runs the full
//                   pipeline; the result is saved through to the store so
//                   every later process takes tier 2.
//
// Refresh() is the live-versioning half (DESIGN.md §15): it remodels an old
// version into a new one (delta rip + incremental recompile) and publishes
// the result atomically — in-flight sessions keep their shared_ptr to the
// old build, new acquires see the new one, and Prune() reclaims superseded
// versions once nothing holds them.
//
// Keys are strings (not workload::AppKind) so dmi_core stays independent of
// the workload layer; callers pass AppKindName(kind).
#ifndef SRC_DMI_MODEL_REGISTRY_H_
#define SRC_DMI_MODEL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "src/dmi/compiled_model.h"
#include "src/support/flight_recorder.h"
#include "src/support/status.h"

namespace dmi {

class ModelRegistry {
 public:
  // `model_dir` is the artifact store; empty disables tiers 2/3's disk side
  // (the registry degrades to a pure in-process memo).
  explicit ModelRegistry(std::string model_dir = "") : model_dir_(std::move(model_dir)) {}

  // Runs the full modeling pipeline for a key on a registry miss. Returns
  // the freshly compiled model (never null on Ok).
  using CompileFn =
      std::function<support::Result<std::shared_ptr<const CompiledModel>>()>;

  // Returns the model for (app_kind, app_version), loading or compiling as
  // needed. Thread-safe; concurrent Acquire calls for the same key resolve
  // to the same shared instance, and the loser of a race never compiles
  // twice (the whole resolution runs under the registry lock — coarse, but
  // Acquire is a per-run, not per-step, operation).
  support::Result<std::shared_ptr<const CompiledModel>> Acquire(
      const std::string& app_kind, const std::string& app_version,
      const ModelingOptions& runtime_options, const CompileFn& compile);

  // What a Refresh remodel callback produced: the new model plus the delta
  // ripper's reuse counter (ripper::DeltaRipResult::nodes_reused), folded
  // into stats().delta_nodes_reused.
  struct Remodeled {
    std::shared_ptr<const CompiledModel> model;
    size_t nodes_reused = 0;
  };

  // Remodels (app_kind, old_version) into new_version, typically by delta
  // ripping against the baseline model's checksum table. `baseline` is the
  // memoized/loaded model for the old version, or null when the registry has
  // never seen it (the callback then full-rips).
  using RemodelFn =
      std::function<support::Result<Remodeled>(const std::shared_ptr<const CompiledModel>& baseline)>;

  // Live version swap (DESIGN.md §15): runs `remodel` against the old
  // version's model and atomically publishes the result as
  // (app_kind, new_version) — after Refresh returns, Acquire of the new
  // version memo-hits the new model, while every shared_ptr handed out for
  // the old version stays valid until its last holder releases it
  // (zero-downtime: in-flight sessions finish on the build they started
  // on). The new model is saved through to the artifact store; the old
  // version's memo entry is kept until Prune(). Idempotent: if the new
  // version is already memoized, returns it without remodeling.
  support::Result<std::shared_ptr<const CompiledModel>> Refresh(
      const std::string& app_kind, const std::string& old_version,
      const std::string& new_version, const ModelingOptions& runtime_options,
      const RemodelFn& remodel);

  // Drops memoized models of `app_kind` that are not the latest published
  // version and have no holders outside the registry (use_count probe under
  // the registry lock — the registry holds the only other ref, so
  // use_count()==1 means no session can still be attached). Returns how many
  // entries were dropped; each also bumps stats().pruned and the
  // registry.pruned metric. Artifacts on disk are untouched.
  size_t Prune(const std::string& app_kind);

  // Borrowed recorder for swap breadcrumbs (Refresh notes the old→new
  // transition); null disables. The recorder must outlive the registry or
  // the next SetFlightRecorder call.
  void SetFlightRecorder(support::FlightRecorder* recorder);

  // "<model_dir>/<kind>-<version>.dmim"; empty when the registry has no
  // store.
  std::string ArtifactPath(const std::string& app_kind, const std::string& app_version) const;

  const std::string& model_dir() const { return model_dir_; }

  struct Stats {
    uint64_t memo_hits = 0;
    uint64_t artifact_loads = 0;
    uint64_t compiles = 0;
    uint64_t save_throughs = 0;
    // Artifacts present but rejected (corrupt, wrong identity, foreign
    // endianness, ...). Each falls back to a compile; the artifact is left
    // in place for inspection and overwritten by the save-through.
    uint64_t load_errors = 0;
    // Warning lines actually emitted for those rejections — at most one per
    // (kind, version), however many sessions re-trip the same broken
    // artifact (regression-tested in tests/artifact_test.cc).
    uint64_t load_errors_logged = 0;
    // Live version swaps (Refresh calls that ran the remodel callback).
    uint64_t delta_rips = 0;
    // Baseline nodes the delta ripper spliced unchanged across all swaps.
    uint64_t delta_nodes_reused = 0;
    // Old-version models dropped by Prune().
    uint64_t pruned = 0;
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  const std::string model_dir_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, std::shared_ptr<const CompiledModel>> memo_;
  // Latest published version per kind: set by the first Acquire of a kind
  // and advanced by every Refresh. Prune keeps only this version.
  std::map<std::string, std::string> latest_;
  // Keys whose artifact-rejection warning has already been emitted.
  std::set<std::pair<std::string, std::string>> load_error_logged_;
  support::FlightRecorder* flight_ = nullptr;  // borrowed; may be null
  Stats stats_;
};

}  // namespace dmi

#endif  // SRC_DMI_MODEL_REGISTRY_H_
