// Checked whole-file I/O for model artifacts and other persisted blobs.
//
// The stdio fast paths (fread/fwrite/fclose) fail in ways that are easy to
// drop on the floor: a short write on a full disk, a read error surfacing
// only through ferror(), a close that loses the final buffer flush. These
// helpers fold every failure mode into a typed support::Status with a
// structured ErrorDetail payload (control_id carries the offending path),
// so callers never see a silently truncated file as success (DESIGN.md §14).
#ifndef SRC_SUPPORT_BINIO_H_
#define SRC_SUPPORT_BINIO_H_

#include <string>

#include "src/support/status.h"

namespace support {

// Writes `bytes` to `path` (truncating). Open failure is kInvalidArgument;
// a short write or a failed flush/close is kInternal. Either way the detail
// payload names the path.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

// Reads the whole file at `path`. A missing/unopenable file is kNotFound; a
// stream error mid-read (ferror) is kInternal. A short read cannot hide: the
// loop runs to EOF and EOF-vs-error is checked explicitly.
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace support

#endif  // SRC_SUPPORT_BINIO_H_
