#include "src/support/metrics.h"

#include <algorithm>
#include <cmath>

namespace support {
namespace {

// Relaxed double accumulation; adds commute so the total is exact up to
// floating-point association.
void AtomicAdd(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) {
    bounds_ = MetricsRegistry::DefaultLatencyBucketsMs();
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());  // overflow: size()
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::QuantileUpperBound(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest observation with at least ceil(q * count)
  // observations at or below it.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.empty() ? 0.0 : bounds.back();
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

uint64_t MetricsSnapshot::LabeledCounterValue(std::string_view name,
                                              const MetricLabels& labels) const {
  MetricLabels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const CounterSnapshot& c : labeled_counters) {
    if (c.name == name && c.labels == sorted) {
      return c.value;
    }
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instrument references handed out must outlive every user,
  // including static-teardown flushes.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::EncodeLabeledName(std::string_view name, MetricLabels labels) {
  if (labels.empty()) {
    return std::string(name);
  }
  std::stable_sort(labels.begin(), labels.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out(name);
  out.push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) {
      out.push_back(',');
    }
    out += labels[i].first;
    out.push_back('=');
    out += labels[i].second;
  }
  out.push_back('}');
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, MetricLabels labels) {
  if (labels.empty()) {
    return GetCounter(name);
  }
  std::stable_sort(labels.begin(), labels.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string key = EncodeLabeledName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = labeled_counters_.find(key);
  if (it == labeled_counters_.end()) {
    LabeledCounter entry;
    entry.labels = std::move(labels);
    entry.counter = std::unique_ptr<Counter>(new Counter());
    it = labeled_counters_.emplace(std::move(key), std::move(entry)).first;
  }
  return *it->second.counter;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back(CounterSnapshot{name, counter->Value(), {}});
  }
  snapshot.labeled_counters.reserve(labeled_counters_.size());
  for (const auto& [key, entry] : labeled_counters_) {
    CounterSnapshot c;
    c.name = key.substr(0, key.find('{'));  // bare name: key is name{k=v,...}
    c.value = entry.counter->Value();
    c.labels = entry.labels;
    snapshot.labeled_counters.push_back(std::move(c));
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.buckets = histogram->BucketCounts();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
  for (auto& [key, entry] : labeled_counters_) {
    entry.counter->Reset();
  }
}

std::vector<double> MetricsRegistry::DefaultLatencyBucketsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,
          25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000.0, 10000.0, 30000.0};
}

}  // namespace support
