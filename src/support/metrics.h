// Process-wide metrics registry: named monotonic counters and fixed-bucket
// histograms (DESIGN.md §8 "Observability").
//
// Unlike tracing, metrics are always on: an increment is one relaxed atomic
// add, an observation is a handful — cheap enough for every pipeline stage.
// Instrument a hot path by resolving the instrument once (the registry lookup
// takes a mutex) and incrementing the returned reference, which stays valid
// for the process lifetime:
//
//   static support::Counter& hits =
//       support::MetricsRegistry::Global().GetCounter("visit.locate_fast_path");
//   hits.Increment();
//
// Snapshots are consistent-enough (each cell read is atomic; the set is not
// a point-in-time cut) and carry everything an exporter needs; JSON rendering
// lives in trace_export.h so this header stays dependency-free for base libs.
#ifndef SRC_SUPPORT_METRICS_H_
#define SRC_SUPPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace support {

class MetricsRegistry;

// A monotonic counter. All operations use relaxed atomics: totals are exact
// (adds commute), ordering against other metrics is not guaranteed.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

// A fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
// (first matching bound); one extra overflow bucket catches the rest.
// Bounds are fixed at registration; Observe is lock-free.
class Histogram {
 public:
  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  // Bucket counts, overflow last (bounds().size() + 1 entries).
  std::vector<uint64_t> BucketCounts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Label dimensions for a counter, e.g. {{"app", "word"}, {"policy", "harsh"}}.
// Keys and values must be short identifier-like strings without '{', '}', ','
// or '=' (they are spliced into the encoded series name verbatim).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
  // Sorted by key; empty for unlabeled counters. Appended last so existing
  // aggregate initializers {name, value} keep compiling unchanged.
  MetricLabels labels;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // overflow last
  uint64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  // Upper bound of the bucket holding the q-quantile observation (clamped to
  // the last finite bound for the overflow bucket) — bucketed, not
  // interpolated.
  double QuantileUpperBound(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      // unlabeled, sorted by name
  std::vector<HistogramSnapshot> histograms;  // sorted by name
  // Labeled series, sorted by (name, sorted labels) via the encoded
  // `name{k1=v1,k2=v2}` form. Kept separate from `counters` so exporters of
  // the unlabeled set stay byte-identical whether or not labels exist.
  std::vector<CounterSnapshot> labeled_counters;

  // 0 / nullptr when absent.
  uint64_t CounterValue(std::string_view name) const;
  uint64_t LabeledCounterValue(std::string_view name, const MetricLabels& labels) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the instrument registered under `name`, creating it on first
  // use. References stay valid forever. A histogram's bounds are set by the
  // first registration; later calls ignore their `bounds` argument.
  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds = {});

  // The labeled series `name` × `labels` (order-insensitive: labels are
  // sorted by key before keying the series). Lives in a registry map separate
  // from the unlabeled counters, so the unlabeled fast path above is
  // untouched — same map, same lock, same lookup as before this overload
  // existed. Labeled sites conventionally increment the unlabeled total too
  // (the "total + per-label" pattern), keeping derived rates and the
  // unlabeled export exactly as they were.
  Counter& GetCounter(std::string_view name, MetricLabels labels);

  // The canonical encoded series name: `name{k1=v1,k2=v2}` with labels
  // sorted by key (stable, so duplicate keys keep their relative order).
  // `name` alone when labels are empty. Exposed for exporters and tests.
  static std::string EncodeLabeledName(std::string_view name, MetricLabels labels);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered instrument (references stay valid). Test/bench
  // isolation only — production code never resets.
  void ResetAllForTest();

  // Wall-latency default: exponential-ish 10µs .. 30s, in milliseconds.
  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  MetricsRegistry() = default;

  struct LabeledCounter {
    MetricLabels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  // Keyed by the encoded `name{k=v,...}` form; map order is the deterministic
  // (name, labels) snapshot order.
  std::map<std::string, LabeledCounter, std::less<>> labeled_counters_;
};

// Shorthand used throughout the pipeline instrumentation.
inline void CountMetric(std::string_view name, uint64_t delta = 1) {
  MetricsRegistry::Global().GetCounter(name).Increment(delta);
}
// Labeled shorthand: bumps the labeled series only. Callers wanting the
// total + per-label pattern pair it with a CountMetric on the bare name.
inline void CountMetric(std::string_view name, MetricLabels labels, uint64_t delta = 1) {
  MetricsRegistry::Global().GetCounter(name, std::move(labels)).Increment(delta);
}
inline void ObserveMetric(std::string_view name, double value) {
  MetricsRegistry::Global().GetHistogram(name).Observe(value);
}

}  // namespace support

#endif  // SRC_SUPPORT_METRICS_H_
