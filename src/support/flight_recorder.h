// Per-run flight recorder: a bounded ring of the run's most recent telemetry
// events (DESIGN.md §13). Where tracing answers "where did the time go" and
// metrics answer "how often fleet-wide", the flight recorder answers "what
// exactly did *this run* do right before it failed": the commands it executed
// with their statuses (including the structured ErrorDetail), retry/backoff
// spending, per-call prompt token counts, and which coalesced batches its LLM
// calls rode in. It is attached to RunResult and rendered into --report-json
// for failed runs, turning every Hostile-policy failure into a self-contained
// postmortem.
//
// The ring is bounded (default 128 events) so a pathological run cannot grow
// memory without limit; `seq` numbers are monotonic and survive eviction, so
// a reader can tell "events 1..37 were dropped" from "the run was short".
//
// Thread-safety: Record*/Events are mutex-guarded. A run's events come from
// one thread at a time (the run executes serially), but the batch scheduler
// may stamp batch membership from another thread, and reporting reads after
// the run ends — one short lock keeps all of that safe.
#ifndef SRC_SUPPORT_FLIGHT_RECORDER_H_
#define SRC_SUPPORT_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace support {

// One recorded event. `kind` is one of the registry entries in DESIGN.md §13:
//   "command"  — an executed DMI/GUI command; `what` is the command text,
//                `status`/`detail` its outcome, attempts/backoff_ticks the
//                retry spending folded into that outcome.
//   "retry"    — an in-flight retry tick (recorded before the final status).
//   "llm_call" — one model call; `tokens` = prompt tokens, `aux_tokens` =
//                output tokens.
//   "batch"    — batch membership; `batch_id` is the scheduler's batch id.
//   "note"     — free-form milestone (deadline degradation, rescue pass...).
// Unused fields stay at their zero values.
struct FlightEvent {
  uint64_t seq = 0;   // 1-based, monotonic, survives ring eviction
  uint64_t t_us = 0;  // trace-epoch timestamp (TraceNowUs)
  std::string kind;
  std::string what;
  std::string status;  // Status::ToString(); empty means ok
  std::shared_ptr<const ErrorDetail> detail;
  int attempts = 0;
  uint64_t backoff_ticks = 0;
  int64_t tokens = 0;
  int64_t aux_tokens = 0;
  uint64_t batch_id = 0;
};

class FlightRecorder {
 public:
  // `run_id` is the trace run id (AllocateTraceRunId), keying this recorder
  // to the run's spans and report entry. `capacity` 0 is clamped to 1.
  explicit FlightRecorder(uint64_t run_id, size_t capacity = 128);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  uint64_t run_id() const { return run_id_; }
  size_t capacity() const { return capacity_; }

  // Stamps seq + timestamp and appends, evicting the oldest event when full.
  void Record(FlightEvent event);

  // Conveniences for the standard kinds.
  void RecordCommand(std::string command, const Status& status);
  void RecordRetry(std::string command, int attempts, uint64_t backoff_ticks);
  void RecordLlmCall(int64_t prompt_tokens, int64_t output_tokens);
  void RecordBatch(uint64_t batch_id);
  void RecordNote(std::string note);

  // Retained events in seq order (oldest first).
  std::vector<FlightEvent> Events() const;
  // Every event ever recorded, including evicted ones.
  uint64_t TotalRecorded() const;
  // TotalRecorded() - retained.
  uint64_t DroppedCount() const;

 private:
  const uint64_t run_id_;
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  std::deque<FlightEvent> ring_;
};

}  // namespace support

#endif  // SRC_SUPPORT_FLIGHT_RECORDER_H_
