// Small string utilities shared by serialization, identifiers and matching.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace support {

// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view text, char sep);

// Joins pieces with the separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to);

// Truncates to at most `max_chars` characters, appending "..." when cut.
std::string Truncate(std::string_view text, size_t max_chars);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace support

#endif  // SRC_SUPPORT_STRINGS_H_
