#include "src/support/binio.h"

#include <cstdio>

namespace support {
namespace {

ErrorDetail PathDetail(const std::string& path) {
  ErrorDetail d;
  d.control_id = path;
  return d;
}

}  // namespace

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open '" + path + "' for writing")
        .WithDetail(PathDetail(path));
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fclose flushes the stdio buffer, so a full fwrite can still lose bytes
  // here (ENOSPC, I/O error); both failures must surface.
  const bool close_ok = std::fclose(f) == 0;
  if (written != bytes.size()) {
    return InternalError("short write to '" + path + "' (" + std::to_string(written) + "/" +
                         std::to_string(bytes.size()) + " bytes)")
        .WithDetail(PathDetail(path));
  }
  if (!close_ok) {
    return InternalError("failed to flush/close '" + path + "'").WithDetail(PathDetail(path));
  }
  return Status::Ok();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError("cannot open '" + path + "' for reading")
        .WithDetail(PathDetail(path));
  }
  std::string bytes;
  // Size the buffer up front (one allocation, one big fread) when the file
  // is seekable; the chunked loop below still runs to EOF, so a file that
  // grew meanwhile — or a pipe, where ftell fails — reads correctly too.
  long size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0 && (size = std::ftell(f)) > 0 &&
      std::fseek(f, 0, SEEK_SET) == 0) {
    bytes.resize(static_cast<size_t>(size));
    const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    bytes.resize(got);
  } else {
    std::clearerr(f);
    std::fseek(f, 0, SEEK_SET);
  }
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  // fread returning 0 means EOF *or* error; only ferror distinguishes a
  // complete file from one truncated by an I/O failure.
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return InternalError("read error on '" + path + "' after " +
                         std::to_string(bytes.size()) + " bytes")
        .WithDetail(PathDetail(path));
  }
  return bytes;
}

}  // namespace support
