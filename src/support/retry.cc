#include "src/support/retry.h"

#include <algorithm>
#include <cmath>

namespace support {

RetryPolicy RetryPolicy::None() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.initial_backoff_ticks = 0;
  p.max_backoff_ticks = 0;
  return p;
}

RetryPolicy RetryPolicy::FixedTicks(int retries) {
  RetryPolicy p;
  p.max_attempts = 1 + (retries < 0 ? 0 : retries);
  p.initial_backoff_ticks = 1;
  p.backoff_multiplier = 1.0;
  p.max_backoff_ticks = 1;
  p.jitter = 0.0;
  return p;
}

RetryPolicy RetryPolicy::ExponentialJitter(int max_attempts,
                                           uint64_t initial_ticks,
                                           double multiplier, uint64_t max_ticks,
                                           double jitter) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.initial_backoff_ticks = initial_ticks;
  p.backoff_multiplier = multiplier;
  p.max_backoff_ticks = max_ticks;
  p.jitter = jitter;
  return p;
}

uint64_t RetryPolicy::BackoffTicks(int retry, Rng& rng) const {
  if (retry < 1 || initial_backoff_ticks == 0) {
    return 0;
  }
  double base = static_cast<double>(initial_backoff_ticks);
  for (int i = 1; i < retry; ++i) {
    base *= backoff_multiplier;
    if (base >= static_cast<double>(max_backoff_ticks)) {
      base = static_cast<double>(max_backoff_ticks);
      break;
    }
  }
  base = std::min(base, static_cast<double>(max_backoff_ticks));
  if (jitter > 0.0) {
    // Uniform in [-jitter, +jitter] of the base; drawn from the seeded run
    // RNG so schedules are deterministic per seed.
    const double spread = (rng.NextDouble() * 2.0 - 1.0) * jitter;
    base *= (1.0 + spread);
  }
  const double clamped =
      std::max(1.0, std::min(base, static_cast<double>(max_backoff_ticks)));
  return static_cast<uint64_t>(std::llround(clamped));
}

}  // namespace support
