#include "src/support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace support {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
    --e;
  }
  return std::string(text.substr(b, e - b));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) {
    return true;
  }
  const std::string h = ToLower(haystack);
  const std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(text);
  }
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::string Truncate(std::string_view text, size_t max_chars) {
  if (text.size() <= max_chars) {
    return std::string(text);
  }
  if (max_chars <= 3) {
    return std::string(text.substr(0, max_chars));
  }
  return std::string(text.substr(0, max_chars - 3)) + "...";
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace support
