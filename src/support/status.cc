#include "src/support/status.h"

namespace support {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace support
