#include "src/support/rng.h"

#include <cassert>
#include <cmath>

namespace support {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace support
