// Deterministic PRNG used everywhere randomness is needed (instability
// injection, simulated-LLM error sampling, latency sampling). All experiment
// runs are reproducible from a single seed.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace support {

// xoshiro256** with a SplitMix64 seeding stage.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Normal(mean, stddev) via Box-Muller.
  double Gaussian(double mean, double stddev);

  // Log-normal sample with the given underlying mu/sigma; used for
  // LLM-latency modeling (heavy right tail).
  double LogNormal(double mu, double sigma);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child stream (stable across platforms).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace support

#endif  // SRC_SUPPORT_RNG_H_
