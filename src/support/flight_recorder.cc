#include "src/support/flight_recorder.h"

#include <algorithm>
#include <utility>

#include "src/support/trace.h"

namespace support {

FlightRecorder::FlightRecorder(uint64_t run_id, size_t capacity)
    : run_id_(run_id), capacity_(std::max<size_t>(1, capacity)) {}

void FlightRecorder::Record(FlightEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  event.t_us = TraceNowUs();
  if (ring_.size() == capacity_) {
    ring_.pop_front();
  }
  ring_.push_back(std::move(event));
}

void FlightRecorder::RecordCommand(std::string command, const Status& status) {
  FlightEvent event;
  event.kind = "command";
  event.what = std::move(command);
  if (!status.ok()) {
    event.status = status.ToString();
    if (status.has_detail()) {
      const ErrorDetail& d = status.detail();
      event.detail = std::make_shared<const ErrorDetail>(d);
      event.attempts = d.attempts;
      event.backoff_ticks = d.backoff_ticks;
    }
  }
  Record(std::move(event));
}

void FlightRecorder::RecordRetry(std::string command, int attempts, uint64_t backoff_ticks) {
  FlightEvent event;
  event.kind = "retry";
  event.what = std::move(command);
  event.attempts = attempts;
  event.backoff_ticks = backoff_ticks;
  Record(std::move(event));
}

void FlightRecorder::RecordLlmCall(int64_t prompt_tokens, int64_t output_tokens) {
  FlightEvent event;
  event.kind = "llm_call";
  event.tokens = prompt_tokens;
  event.aux_tokens = output_tokens;
  Record(std::move(event));
}

void FlightRecorder::RecordBatch(uint64_t batch_id) {
  FlightEvent event;
  event.kind = "batch";
  event.batch_id = batch_id;
  Record(std::move(event));
}

void FlightRecorder::RecordNote(std::string note) {
  FlightEvent event;
  event.kind = "note";
  event.what = std::move(note);
  Record(std::move(event));
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<FlightEvent>(ring_.begin(), ring_.end());
}

uint64_t FlightRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t FlightRecorder::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (next_seq_ - 1) - ring_.size();
}

}  // namespace support
