#include "src/support/trace_export.h"

#include <fstream>
#include <unordered_map>

namespace support {
namespace {

jsonv::Value EventJson(const TraceEvent& event) {
  jsonv::Object o;
  o["name"] = jsonv::Value(event.name);
  o["cat"] = jsonv::Value(event.category);
  o["ph"] = jsonv::Value("X");  // complete event: ts + dur in one record
  o["ts"] = jsonv::Value(static_cast<int64_t>(event.start_us));
  o["dur"] = jsonv::Value(static_cast<int64_t>(event.dur_us));
  o["pid"] = jsonv::Value(static_cast<int64_t>(1));
  o["tid"] = jsonv::Value(static_cast<int64_t>(event.tid));
  jsonv::Object args;
  args["depth"] = jsonv::Value(static_cast<int64_t>(event.depth));
  // Causal coordinates render only when present, so events emitted without
  // context (and all pre-context golden fixtures) stay byte-identical.
  if (event.span_id != 0) {
    args["span"] = jsonv::Value(static_cast<int64_t>(event.span_id));
  }
  if (event.parent_span_id != 0) {
    args["parent"] = jsonv::Value(static_cast<int64_t>(event.parent_span_id));
  }
  if (event.run_id != 0) {
    args["run"] = jsonv::Value(static_cast<int64_t>(event.run_id));
  }
  if (!event.links.empty()) {
    jsonv::Array links;
    links.reserve(event.links.size());
    for (uint64_t link : event.links) {
      links.push_back(jsonv::Value(static_cast<int64_t>(link)));
    }
    args["links"] = jsonv::Value(std::move(links));
  }
  for (const auto& [key, value] : event.args) {
    args[key] = jsonv::Value(value);
  }
  o["args"] = jsonv::Value(std::move(args));
  return jsonv::Value(std::move(o));
}

// One Chrome flow edge: a "s" (start) event at the producer and a matching
// "f" (finish, bp:"e") event at the consumer, sharing name/cat/id.
void AppendFlowEdge(jsonv::Array& out, int64_t flow_id, const char* name,
                    uint32_t from_tid, uint64_t from_ts, uint32_t to_tid, uint64_t to_ts) {
  jsonv::Object s;
  s["name"] = jsonv::Value(name);
  s["cat"] = jsonv::Value("flow");
  s["ph"] = jsonv::Value("s");
  s["id"] = jsonv::Value(flow_id);
  s["ts"] = jsonv::Value(static_cast<int64_t>(from_ts));
  s["pid"] = jsonv::Value(static_cast<int64_t>(1));
  s["tid"] = jsonv::Value(static_cast<int64_t>(from_tid));
  out.push_back(jsonv::Value(std::move(s)));
  jsonv::Object f;
  f["name"] = jsonv::Value(name);
  f["cat"] = jsonv::Value("flow");
  f["ph"] = jsonv::Value("f");
  f["bp"] = jsonv::Value("e");
  f["id"] = jsonv::Value(flow_id);
  f["ts"] = jsonv::Value(static_cast<int64_t>(to_ts));
  f["pid"] = jsonv::Value(static_cast<int64_t>(1));
  f["tid"] = jsonv::Value(static_cast<int64_t>(to_tid));
  out.push_back(jsonv::Value(std::move(f)));
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.close();
  if (!out.good()) {
    return InternalError("short write to '" + path + "'");
  }
  return Status::Ok();
}

// Adds derived["name"] = num / (num + denom_rest) when the inputs exist.
void AddRate(jsonv::Object& derived, const MetricsSnapshot& snapshot, const char* name,
             const char* numerator, const char* other) {
  const uint64_t num = snapshot.CounterValue(numerator);
  const uint64_t rest = snapshot.CounterValue(other);
  if (num + rest == 0) {
    return;
  }
  derived[name] = jsonv::Value(static_cast<double>(num) / static_cast<double>(num + rest));
}

}  // namespace

jsonv::Value ChromeTraceJson(const std::vector<TraceEvent>& events) {
  jsonv::Array trace_events;
  trace_events.reserve(events.size());
  std::unordered_map<uint64_t, size_t> by_span;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0) {
      by_span.emplace(events[i].span_id, i);
    }
  }
  for (const TraceEvent& event : events) {
    trace_events.push_back(EventJson(event));
  }
  // Flow edges. Ids count up in event order, which is deterministic for a
  // given (causally sorted) event list.
  int64_t next_flow_id = 1;
  for (const TraceEvent& event : events) {
    if (event.parent_span_id != 0) {
      const auto it = by_span.find(event.parent_span_id);
      // Only cross-thread parenthood needs a flow; same-thread nesting is
      // already visible in the timeline.
      if (it != by_span.end() && events[it->second].tid != event.tid) {
        const TraceEvent& parent = events[it->second];
        AppendFlowEdge(trace_events, next_flow_id++, "submit", parent.tid, parent.start_us,
                       event.tid, event.start_us);
      }
    }
    for (uint64_t link : event.links) {
      const auto it = by_span.find(link);
      if (it == by_span.end()) {
        continue;
      }
      const TraceEvent& member = events[it->second];
      AppendFlowEdge(trace_events, next_flow_id++, "link", member.tid, member.start_us,
                     event.tid, event.start_us);
    }
  }
  jsonv::Object doc;
  doc["traceEvents"] = jsonv::Value(std::move(trace_events));
  doc["displayTimeUnit"] = jsonv::Value("ms");
  return jsonv::Value(std::move(doc));
}

Status WriteChromeTrace(const std::string& path, const std::vector<TraceEvent>& events) {
  return WriteFile(path, ChromeTraceJson(events).DumpPretty() + "\n");
}

std::string TraceJsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += EventJson(event).Dump();
    out += '\n';
  }
  return out;
}

Status WriteTraceJsonl(const std::string& path, const std::vector<TraceEvent>& events) {
  return WriteFile(path, TraceJsonl(events));
}

jsonv::Value MetricsJson(const MetricsSnapshot& snapshot) {
  jsonv::Object counters;
  for (const CounterSnapshot& c : snapshot.counters) {
    counters[c.name] = jsonv::Value(static_cast<int64_t>(c.value));
  }

  jsonv::Object histograms;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    jsonv::Object o;
    jsonv::Array bounds;
    for (double b : h.bounds) {
      bounds.push_back(jsonv::Value(b));
    }
    jsonv::Array buckets;
    for (uint64_t b : h.buckets) {
      buckets.push_back(jsonv::Value(static_cast<int64_t>(b)));
    }
    o["bounds"] = jsonv::Value(std::move(bounds));
    o["buckets"] = jsonv::Value(std::move(buckets));
    o["count"] = jsonv::Value(static_cast<int64_t>(h.count));
    o["sum"] = jsonv::Value(h.sum);
    o["mean"] = jsonv::Value(h.Mean());
    o["p50_le"] = jsonv::Value(h.QuantileUpperBound(0.5));
    o["p95_le"] = jsonv::Value(h.QuantileUpperBound(0.95));
    histograms[h.name] = jsonv::Value(std::move(o));
  }

  // Pipeline health ratios the benches and BENCH_perf.json report directly.
  jsonv::Object derived;
  AddRate(derived, snapshot, "capture_cache_hit_rate", "visible_index.capture_hits",
          "visible_index.rebuilds");
  AddRate(derived, snapshot, "rip_capture_hit_rate", "rip.capture_cache_hits",
          "rip.capture_rebuilds");
  AddRate(derived, snapshot, "visit_locate_fast_path_rate", "visit.locate_fast_path",
          "visit.locate_fallback_walks");
  AddRate(derived, snapshot, "agent_success_rate", "agent.successes", "agent.failures");

  jsonv::Object doc;
  doc["counters"] = jsonv::Value(std::move(counters));
  doc["histograms"] = jsonv::Value(std::move(histograms));
  doc["derived"] = jsonv::Value(std::move(derived));
  if (!snapshot.labeled_counters.empty()) {
    // Keyed by the encoded series name; jsonv objects are sorted maps, so
    // the document order is the deterministic (name, labels) order.
    jsonv::Object labeled;
    for (const CounterSnapshot& c : snapshot.labeled_counters) {
      labeled[MetricsRegistry::EncodeLabeledName(c.name, c.labels)] =
          jsonv::Value(static_cast<int64_t>(c.value));
    }
    doc["labeled_counters"] = jsonv::Value(std::move(labeled));
  }
  return jsonv::Value(std::move(doc));
}

Status WriteMetricsJson(const std::string& path, const MetricsSnapshot& snapshot) {
  return WriteFile(path, MetricsJson(snapshot).DumpPretty() + "\n");
}

jsonv::Value FlightRecorderJson(const FlightRecorder& recorder) {
  jsonv::Object doc;
  doc["run_id"] = jsonv::Value(static_cast<int64_t>(recorder.run_id()));
  doc["capacity"] = jsonv::Value(static_cast<int64_t>(recorder.capacity()));
  doc["total_recorded"] = jsonv::Value(static_cast<int64_t>(recorder.TotalRecorded()));
  doc["dropped"] = jsonv::Value(static_cast<int64_t>(recorder.DroppedCount()));
  jsonv::Array events;
  for (const FlightEvent& event : recorder.Events()) {
    jsonv::Object o;
    o["seq"] = jsonv::Value(static_cast<int64_t>(event.seq));
    o["t_us"] = jsonv::Value(static_cast<int64_t>(event.t_us));
    o["kind"] = jsonv::Value(event.kind);
    if (!event.what.empty()) {
      o["what"] = jsonv::Value(event.what);
    }
    if (!event.status.empty()) {
      o["status"] = jsonv::Value(event.status);
    }
    if (event.detail != nullptr) {
      // Same shape as the report's final_status error_detail.
      jsonv::Object detail;
      detail["control_id"] = jsonv::Value(event.detail->control_id);
      detail["control_name"] = jsonv::Value(event.detail->control_name);
      detail["required_pattern"] = jsonv::Value(event.detail->required_pattern);
      detail["retryable"] = jsonv::Value(event.detail->retryable);
      detail["attempts"] = jsonv::Value(static_cast<int64_t>(event.detail->attempts));
      detail["backoff_ticks"] = jsonv::Value(static_cast<int64_t>(event.detail->backoff_ticks));
      o["error_detail"] = jsonv::Value(std::move(detail));
    }
    if (event.attempts != 0) {
      o["attempts"] = jsonv::Value(static_cast<int64_t>(event.attempts));
    }
    if (event.backoff_ticks != 0) {
      o["backoff_ticks"] = jsonv::Value(static_cast<int64_t>(event.backoff_ticks));
    }
    if (event.tokens != 0) {
      o["tokens"] = jsonv::Value(event.tokens);
    }
    if (event.aux_tokens != 0) {
      o["aux_tokens"] = jsonv::Value(event.aux_tokens);
    }
    if (event.batch_id != 0) {
      o["batch_id"] = jsonv::Value(static_cast<int64_t>(event.batch_id));
    }
    events.push_back(jsonv::Value(std::move(o)));
  }
  doc["events"] = jsonv::Value(std::move(events));
  return jsonv::Value(std::move(doc));
}

}  // namespace support
