#include "src/support/trace_export.h"

#include <fstream>

namespace support {
namespace {

jsonv::Value EventJson(const TraceEvent& event) {
  jsonv::Object o;
  o["name"] = jsonv::Value(event.name);
  o["cat"] = jsonv::Value(event.category);
  o["ph"] = jsonv::Value("X");  // complete event: ts + dur in one record
  o["ts"] = jsonv::Value(static_cast<int64_t>(event.start_us));
  o["dur"] = jsonv::Value(static_cast<int64_t>(event.dur_us));
  o["pid"] = jsonv::Value(static_cast<int64_t>(1));
  o["tid"] = jsonv::Value(static_cast<int64_t>(event.tid));
  jsonv::Object args;
  args["depth"] = jsonv::Value(static_cast<int64_t>(event.depth));
  for (const auto& [key, value] : event.args) {
    args[key] = jsonv::Value(value);
  }
  o["args"] = jsonv::Value(std::move(args));
  return jsonv::Value(std::move(o));
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.close();
  if (!out.good()) {
    return InternalError("short write to '" + path + "'");
  }
  return Status::Ok();
}

// Adds derived["name"] = num / (num + denom_rest) when the inputs exist.
void AddRate(jsonv::Object& derived, const MetricsSnapshot& snapshot, const char* name,
             const char* numerator, const char* other) {
  const uint64_t num = snapshot.CounterValue(numerator);
  const uint64_t rest = snapshot.CounterValue(other);
  if (num + rest == 0) {
    return;
  }
  derived[name] = jsonv::Value(static_cast<double>(num) / static_cast<double>(num + rest));
}

}  // namespace

jsonv::Value ChromeTraceJson(const std::vector<TraceEvent>& events) {
  jsonv::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& event : events) {
    trace_events.push_back(EventJson(event));
  }
  jsonv::Object doc;
  doc["traceEvents"] = jsonv::Value(std::move(trace_events));
  doc["displayTimeUnit"] = jsonv::Value("ms");
  return jsonv::Value(std::move(doc));
}

Status WriteChromeTrace(const std::string& path, const std::vector<TraceEvent>& events) {
  return WriteFile(path, ChromeTraceJson(events).DumpPretty() + "\n");
}

std::string TraceJsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += EventJson(event).Dump();
    out += '\n';
  }
  return out;
}

Status WriteTraceJsonl(const std::string& path, const std::vector<TraceEvent>& events) {
  return WriteFile(path, TraceJsonl(events));
}

jsonv::Value MetricsJson(const MetricsSnapshot& snapshot) {
  jsonv::Object counters;
  for (const CounterSnapshot& c : snapshot.counters) {
    counters[c.name] = jsonv::Value(static_cast<int64_t>(c.value));
  }

  jsonv::Object histograms;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    jsonv::Object o;
    jsonv::Array bounds;
    for (double b : h.bounds) {
      bounds.push_back(jsonv::Value(b));
    }
    jsonv::Array buckets;
    for (uint64_t b : h.buckets) {
      buckets.push_back(jsonv::Value(static_cast<int64_t>(b)));
    }
    o["bounds"] = jsonv::Value(std::move(bounds));
    o["buckets"] = jsonv::Value(std::move(buckets));
    o["count"] = jsonv::Value(static_cast<int64_t>(h.count));
    o["sum"] = jsonv::Value(h.sum);
    o["mean"] = jsonv::Value(h.Mean());
    o["p50_le"] = jsonv::Value(h.QuantileUpperBound(0.5));
    o["p95_le"] = jsonv::Value(h.QuantileUpperBound(0.95));
    histograms[h.name] = jsonv::Value(std::move(o));
  }

  // Pipeline health ratios the benches and BENCH_perf.json report directly.
  jsonv::Object derived;
  AddRate(derived, snapshot, "capture_cache_hit_rate", "visible_index.capture_hits",
          "visible_index.rebuilds");
  AddRate(derived, snapshot, "rip_capture_hit_rate", "rip.capture_cache_hits",
          "rip.capture_rebuilds");
  AddRate(derived, snapshot, "visit_locate_fast_path_rate", "visit.locate_fast_path",
          "visit.locate_fallback_walks");
  AddRate(derived, snapshot, "agent_success_rate", "agent.successes", "agent.failures");

  jsonv::Object doc;
  doc["counters"] = jsonv::Value(std::move(counters));
  doc["histograms"] = jsonv::Value(std::move(histograms));
  doc["derived"] = jsonv::Value(std::move(derived));
  return jsonv::Value(std::move(doc));
}

Status WriteMetricsJson(const std::string& path, const MetricsSnapshot& snapshot) {
  return WriteFile(path, MetricsJson(snapshot).DumpPretty() + "\n");
}

}  // namespace support
