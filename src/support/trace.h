// Span tracing for the rip → model → visit → agent pipeline.
//
// A TraceSpan is an RAII scope: construction stamps a monotonic-clock start,
// destruction emits one completed TraceEvent into a per-thread buffer.
// Buffers drain into the global TraceRecorder either when their thread exits
// or when Drain() collects everything (exporters run at end of a tool/bench).
// Spans nest naturally — each carries the thread-local nesting depth at the
// time it opened — and may attach key/value attributes.
//
// Causal context (DESIGN.md §13): every armed span is assigned a
// process-unique span id and records the id of its *logical* parent — the
// span id held by the calling thread's TraceContext at open time — plus the
// run id of the enclosing run scope. The context crosses thread boundaries
// explicitly: support::ThreadPool captures the submitter's context and
// reinstalls it around the task (TraceContextScope), so a span opened on a
// pool worker parents to the span that submitted the work, not to whatever
// happened to run on that worker before. Spans that aggregate work from many
// runs (batched LLM calls) attach span *links* to every member instead of a
// single parent.
//
// Cost contract (DESIGN.md §8): tracing is compiled in but must be invisible
// when disabled. A disabled TraceSpan performs exactly one relaxed atomic
// load and touches nothing else — no clock read, no allocation, no lock —
// so hot paths can carry spans unconditionally. Enabled spans pay two clock
// reads plus one short uncontended lock on their own thread's buffer.
//
// Thread-safety: everything here may be used from any thread. Event order
// within Drain() is normalized to causal order (SortTraceEventsCausally):
// parents sort before children even when both stamped the same microsecond
// from different threads.
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace support {

namespace trace_internal {
// The enable gate, exposed so TraceSpan's disabled path inlines to a single
// relaxed load (the overhead budget for disabled tracing).
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_internal

// The causal coordinates carried across task-submission boundaries: which run
// the current work belongs to and which span is its logical parent. A zero id
// means "none" — ids handed out by the allocators below start at 1.
struct TraceContext {
  uint64_t run_id = 0;
  uint64_t span_id = 0;

  bool empty() const { return run_id == 0 && span_id == 0; }
};

// Process-unique run id (never 0). Allocated per task run regardless of the
// tracing gate: the same id keys the run's flight recorder and its
// --report-json entry, so trace and report correlate.
uint64_t AllocateTraceRunId();

// The calling thread's current context; {} when tracing is disabled.
TraceContext CurrentTraceContext();

// One completed span. Times are microseconds since the process trace epoch
// (the first touch of the tracing subsystem).
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // small stable per-thread id, assigned on first emit
  int depth = 0;     // nesting depth on the emitting thread when opened
  // Causal coordinates: 0 = absent. `parent_span_id` is the logical parent
  // (possibly on another thread); `links` are additional causal edges for
  // fan-in spans (a batch flush links every member call's span).
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t run_id = 0;
  std::vector<uint64_t> links;
  std::vector<std::pair<std::string, std::string>> args;
};

// Sorts events into causal order: primary (start_us), tie-broken by causal
// depth — the distance to the root of the parent chain within `events`,
// falling back to the recorded thread-local depth when the parent is absent
// (still open at drain time, or emitted before tracing was enabled) — then
// (tid, span_id) for total determinism. With explicit parent ids this sorts a
// cross-thread child after its parent even when both carry the same
// microsecond timestamp, which the old (start, tid, depth) order did not.
void SortTraceEventsCausally(std::vector<TraceEvent>& events);

class TraceRecorder {
 public:
  // The process-wide recorder. Never destroyed (threads may flush buffers
  // during late teardown).
  static TraceRecorder& Global();

  static bool Enabled() {
    return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
  }
  void SetEnabled(bool on) {
    trace_internal::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  // Flushes every live thread buffer plus the events of already-exited
  // threads and returns them in causal order (SortTraceEventsCausally). The
  // recorder is empty afterwards.
  std::vector<TraceEvent> Drain();

  // Drain and discard (test isolation).
  void Discard() { (void)Drain(); }

  // Events currently held (live buffers + retired), without draining.
  size_t ApproxEventCount();

 private:
  friend class TraceSpan;
  friend class TraceContextScope;
  friend struct ThreadTraceBuffer;

  TraceRecorder() = default;

  // Appends to the calling thread's buffer, registering it on first use.
  void Emit(TraceEvent event);

  struct Impl;
  Impl& impl();
};

// Installs `ctx` as the calling thread's current context for the scope's
// lifetime (restoring the previous context on exit). Used at the two
// propagation points: a run root installing its fresh run id, and a pool
// worker adopting the submitter's context. Same cost contract as TraceSpan:
// disabled, it performs one relaxed load and nothing else.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx) : armed_(TraceRecorder::Enabled()) {
    if (armed_) {
      Install(ctx);
    }
  }
  ~TraceContextScope() {
    if (armed_) {
      Restore();
    }
  }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  void Install(TraceContext ctx);
  void Restore();

  bool armed_;
  TraceContext saved_;
};

// Microseconds since the trace epoch (monotonic clock).
uint64_t TraceNowUs();

class TraceSpan {
 public:
  // `name` and `category` must outlive the span (string literals in
  // practice); nothing is copied until the span closes.
  explicit TraceSpan(const char* name, const char* category = "span")
      : name_(name), category_(category), armed_(TraceRecorder::Enabled()) {
    if (armed_) {
      Open();
    }
  }
  ~TraceSpan() {
    if (armed_) {
      Close();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a key/value attribute; no-op (and no allocation) when disabled.
  void AddArg(const char* key, std::string value) {
    if (armed_) {
      args_.emplace_back(key, std::move(value));
    }
  }
  void AddArg(const char* key, int64_t value) {
    if (armed_) {
      args_.emplace_back(key, std::to_string(value));
    }
  }

  // Attaches a causal link to another span (fan-in edges: a batch flush links
  // every member call's span). No-op when disabled or `span_id` is 0.
  void AddLink(uint64_t span_id) {
    if (armed_ && span_id != 0) {
      links_.push_back(span_id);
    }
  }

  // Whether this span is recording (tracing was enabled when it opened).
  bool armed() const { return armed_; }
  // This span's process-unique id (0 when disabled). Valid while open.
  uint64_t span_id() const { return span_id_; }

 private:
  void Open();   // stamps start, bumps the thread depth counter
  void Close();  // emits the completed event

  const char* name_;
  const char* category_;
  bool armed_;
  int depth_ = 0;
  uint64_t start_us_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t run_id_ = 0;
  std::vector<uint64_t> links_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace support

// Spell the span variable with the line number so several can coexist in one
// scope without naming ceremony.
#define DMI_TRACE_CONCAT_INNER(a, b) a##b
#define DMI_TRACE_CONCAT(a, b) DMI_TRACE_CONCAT_INNER(a, b)
#define DMI_TRACE_SPAN(name, category) \
  ::support::TraceSpan DMI_TRACE_CONCAT(dmi_trace_span_, __LINE__)(name, category)

#endif  // SRC_SUPPORT_TRACE_H_
