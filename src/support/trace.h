// Span tracing for the rip → model → visit → agent pipeline.
//
// A TraceSpan is an RAII scope: construction stamps a monotonic-clock start,
// destruction emits one completed TraceEvent into a per-thread buffer.
// Buffers drain into the global TraceRecorder either when their thread exits
// or when Drain() collects everything (exporters run at end of a tool/bench).
// Spans nest naturally — each carries the thread-local nesting depth at the
// time it opened — and may attach key/value attributes.
//
// Cost contract (DESIGN.md §8): tracing is compiled in but must be invisible
// when disabled. A disabled TraceSpan performs exactly one relaxed atomic
// load and touches nothing else — no clock read, no allocation, no lock —
// so hot paths can carry spans unconditionally. Enabled spans pay two clock
// reads plus one short uncontended lock on their own thread's buffer.
//
// Thread-safety: everything here may be used from any thread. Event order
// within Drain() is normalized to (start time, thread, depth), so nested
// spans sort parent-before-child even though they are *emitted* child-first
// (LIFO destruction).
#ifndef SRC_SUPPORT_TRACE_H_
#define SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace support {

namespace trace_internal {
// The enable gate, exposed so TraceSpan's disabled path inlines to a single
// relaxed load (the overhead budget for disabled tracing).
extern std::atomic<bool> g_trace_enabled;
}  // namespace trace_internal

// One completed span. Times are microseconds since the process trace epoch
// (the first touch of the tracing subsystem).
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;  // small stable per-thread id, assigned on first emit
  int depth = 0;     // nesting depth on the emitting thread when opened
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  // The process-wide recorder. Never destroyed (threads may flush buffers
  // during late teardown).
  static TraceRecorder& Global();

  static bool Enabled() {
    return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
  }
  void SetEnabled(bool on) {
    trace_internal::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  // Flushes every live thread buffer plus the events of already-exited
  // threads and returns them sorted by (start_us, tid, depth). The recorder
  // is empty afterwards.
  std::vector<TraceEvent> Drain();

  // Drain and discard (test isolation).
  void Discard() { (void)Drain(); }

  // Events currently held (live buffers + retired), without draining.
  size_t ApproxEventCount();

 private:
  friend class TraceSpan;
  friend struct ThreadTraceBuffer;

  TraceRecorder() = default;

  // Appends to the calling thread's buffer, registering it on first use.
  void Emit(TraceEvent event);

  struct Impl;
  Impl& impl();
};

// Microseconds since the trace epoch (monotonic clock).
uint64_t TraceNowUs();

class TraceSpan {
 public:
  // `name` and `category` must outlive the span (string literals in
  // practice); nothing is copied until the span closes.
  explicit TraceSpan(const char* name, const char* category = "span")
      : name_(name), category_(category), armed_(TraceRecorder::Enabled()) {
    if (armed_) {
      Open();
    }
  }
  ~TraceSpan() {
    if (armed_) {
      Close();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a key/value attribute; no-op (and no allocation) when disabled.
  void AddArg(const char* key, std::string value) {
    if (armed_) {
      args_.emplace_back(key, std::move(value));
    }
  }
  void AddArg(const char* key, int64_t value) {
    if (armed_) {
      args_.emplace_back(key, std::to_string(value));
    }
  }

  // Whether this span is recording (tracing was enabled when it opened).
  bool armed() const { return armed_; }

 private:
  void Open();   // stamps start, bumps the thread depth counter
  void Close();  // emits the completed event

  const char* name_;
  const char* category_;
  bool armed_;
  int depth_ = 0;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace support

// Spell the span variable with the line number so several can coexist in one
// scope without naming ceremony.
#define DMI_TRACE_CONCAT_INNER(a, b) a##b
#define DMI_TRACE_CONCAT(a, b) DMI_TRACE_CONCAT_INNER(a, b)
#define DMI_TRACE_SPAN(name, category) \
  ::support::TraceSpan DMI_TRACE_CONCAT(dmi_trace_span_, __LINE__)(name, category)

#endif  // SRC_SUPPORT_TRACE_H_
