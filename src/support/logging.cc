#include "src/support/logging.h"

#include <atomic>
#include <cstdio>

namespace support {
namespace {

// Relaxed is enough: the level is configuration, not synchronization.
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) {
    return;
  }
  // One buffer, one write: concurrent workers' lines never interleave
  // (POSIX stderr is unbuffered, so a single fwrite is a single write).
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += LevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace support
