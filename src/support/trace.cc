#include "src/support/trace.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

namespace support {

namespace trace_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_internal

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Process-unique id wells. Relaxed is enough: ids only need uniqueness, not
// ordering. Both start at 1 so 0 stays the "absent" sentinel.
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_run_id{1};

}  // namespace

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - TraceEpoch())
                                   .count());
}

uint64_t AllocateTraceRunId() {
  return g_next_run_id.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread event buffer. The owning thread appends under its own (almost
// always uncontended) mutex; Drain() from any thread takes the same mutex
// briefly. On thread exit the destructor moves the remaining events into the
// recorder's retired list, so nothing is lost when pool workers join.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  int depth = 0;            // owning thread only (span open/close nesting counter)
  TraceContext context;     // owning thread only (current run/parent-span ids)

  ThreadTraceBuffer();
  ~ThreadTraceBuffer();
};

struct TraceRecorder::Impl {
  std::mutex mu;
  std::vector<ThreadTraceBuffer*> live;
  std::vector<TraceEvent> retired;
  uint32_t next_tid = 1;
};

TraceRecorder::Impl& TraceRecorder::impl() {
  // Leaked on purpose: thread buffers may flush during static teardown.
  static Impl* impl = new Impl();
  return *impl;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

namespace {

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

}  // namespace

TraceContext CurrentTraceContext() {
  if (!TraceRecorder::Enabled()) {
    return TraceContext{};
  }
  return LocalBuffer().context;
}

void TraceContextScope::Install(TraceContext ctx) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  saved_ = buffer.context;
  buffer.context = ctx;
}

void TraceContextScope::Restore() { LocalBuffer().context = saved_; }

ThreadTraceBuffer::ThreadTraceBuffer() {
  auto& impl = TraceRecorder::Global().impl();
  std::lock_guard<std::mutex> lock(impl.mu);
  tid = impl.next_tid++;
  impl.live.push_back(this);
}

ThreadTraceBuffer::~ThreadTraceBuffer() {
  auto& impl = TraceRecorder::Global().impl();
  std::lock_guard<std::mutex> lock(impl.mu);
  {
    std::lock_guard<std::mutex> self(mu);
    impl.retired.insert(impl.retired.end(), std::make_move_iterator(events.begin()),
                        std::make_move_iterator(events.end()));
    events.clear();
  }
  impl.live.erase(std::remove(impl.live.begin(), impl.live.end(), this), impl.live.end());
}

void TraceRecorder::Emit(TraceEvent event) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

void SortTraceEventsCausally(std::vector<TraceEvent>& events) {
  // Resolve each event's causal depth: distance to the root of its parent
  // chain within `events`. The recorded thread-local depth is the fallback
  // when the parent is not in the drained set (still open, or pre-context
  // synthetic events), and the cycle guard for malformed input.
  std::unordered_map<uint64_t, size_t> by_span;
  by_span.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].span_id != 0) {
      by_span.emplace(events[i].span_id, i);
    }
  }
  constexpr int kUnresolved = -1;
  constexpr int kResolving = -2;
  std::vector<int> causal(events.size(), kUnresolved);
  // Iterative resolution (parent chains are short, but avoid recursion).
  std::vector<size_t> chain;
  for (size_t i = 0; i < events.size(); ++i) {
    if (causal[i] != kUnresolved) {
      continue;
    }
    chain.clear();
    size_t cur = i;
    int base = 0;
    while (true) {
      if (causal[cur] >= 0) {
        base = causal[cur];  // known suffix: extend from here
        break;
      }
      if (causal[cur] == kResolving) {
        base = events[cur].depth;  // cycle: fall back to the recorded depth
        break;
      }
      causal[cur] = kResolving;
      chain.push_back(cur);
      const uint64_t parent = events[cur].parent_span_id;
      const auto it = parent == 0 ? by_span.end() : by_span.find(parent);
      if (it == by_span.end()) {
        base = events[cur].depth;  // no resolvable parent: recorded depth
        break;
      }
      cur = it->second;
    }
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      // The first chain entry sits at `base`; each link below it is one
      // deeper. When the walk stopped *at* chain.back() itself (no parent),
      // base already is its depth.
      causal[*rit] = base;
      base += 1;
    }
  }
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t ia, size_t ib) {
    const TraceEvent& a = events[ia];
    const TraceEvent& b = events[ib];
    if (a.start_us != b.start_us) {
      return a.start_us < b.start_us;
    }
    if (causal[ia] != causal[ib]) {
      return causal[ia] < causal[ib];
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.span_id < b.span_id;
  });
  std::vector<TraceEvent> sorted;
  sorted.reserve(events.size());
  for (size_t i : order) {
    sorted.push_back(std::move(events[i]));
  }
  events = std::move(sorted);
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  Impl& i = impl();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    out = std::move(i.retired);
    i.retired.clear();
    for (ThreadTraceBuffer* buffer : i.live) {
      std::lock_guard<std::mutex> self(buffer->mu);
      out.insert(out.end(), std::make_move_iterator(buffer->events.begin()),
                 std::make_move_iterator(buffer->events.end()));
      buffer->events.clear();
    }
  }
  // Emit order is completion order (children before parents); normalize to
  // causal order so consumers see parent-before-child, including across
  // threads (pool tasks parented to their submitter).
  SortTraceEventsCausally(out);
  return out;
}

size_t TraceRecorder::ApproxEventCount() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  size_t n = i.retired.size();
  for (ThreadTraceBuffer* buffer : i.live) {
    std::lock_guard<std::mutex> self(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void TraceSpan::Open() {
  ThreadTraceBuffer& buffer = LocalBuffer();
  depth_ = buffer.depth++;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_span_id_ = buffer.context.span_id;
  run_id_ = buffer.context.run_id;
  buffer.context.span_id = span_id_;
  start_us_ = TraceNowUs();
}

void TraceSpan::Close() {
  const uint64_t end_us = TraceNowUs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  --buffer.depth;
  buffer.context.span_id = parent_span_id_;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.depth = depth_;
  event.span_id = span_id_;
  event.parent_span_id = parent_span_id_;
  event.run_id = run_id_;
  event.links = std::move(links_);
  event.args = std::move(args_);
  TraceRecorder::Global().Emit(std::move(event));
}

}  // namespace support
