#include "src/support/trace.h"

#include <algorithm>
#include <mutex>

namespace support {

namespace trace_internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace trace_internal

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - TraceEpoch())
                                   .count());
}

// Per-thread event buffer. The owning thread appends under its own (almost
// always uncontended) mutex; Drain() from any thread takes the same mutex
// briefly. On thread exit the destructor moves the remaining events into the
// recorder's retired list, so nothing is lost when pool workers join.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  int depth = 0;  // owning thread only (span open/close nesting counter)

  ThreadTraceBuffer();
  ~ThreadTraceBuffer();
};

struct TraceRecorder::Impl {
  std::mutex mu;
  std::vector<ThreadTraceBuffer*> live;
  std::vector<TraceEvent> retired;
  uint32_t next_tid = 1;
};

TraceRecorder::Impl& TraceRecorder::impl() {
  // Leaked on purpose: thread buffers may flush during static teardown.
  static Impl* impl = new Impl();
  return *impl;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

namespace {

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

}  // namespace

ThreadTraceBuffer::ThreadTraceBuffer() {
  auto& impl = TraceRecorder::Global().impl();
  std::lock_guard<std::mutex> lock(impl.mu);
  tid = impl.next_tid++;
  impl.live.push_back(this);
}

ThreadTraceBuffer::~ThreadTraceBuffer() {
  auto& impl = TraceRecorder::Global().impl();
  std::lock_guard<std::mutex> lock(impl.mu);
  {
    std::lock_guard<std::mutex> self(mu);
    impl.retired.insert(impl.retired.end(), std::make_move_iterator(events.begin()),
                        std::make_move_iterator(events.end()));
    events.clear();
  }
  impl.live.erase(std::remove(impl.live.begin(), impl.live.end(), this), impl.live.end());
}

void TraceRecorder::Emit(TraceEvent event) {
  ThreadTraceBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  Impl& i = impl();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(i.mu);
    out = std::move(i.retired);
    i.retired.clear();
    for (ThreadTraceBuffer* buffer : i.live) {
      std::lock_guard<std::mutex> self(buffer->mu);
      out.insert(out.end(), std::make_move_iterator(buffer->events.begin()),
                 std::make_move_iterator(buffer->events.end()));
      buffer->events.clear();
    }
  }
  // Emit order is completion order (children before parents); normalize to
  // chronological-with-nesting so consumers see parent-before-child.
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_us != b.start_us) {
      return a.start_us < b.start_us;
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.depth < b.depth;
  });
  return out;
}

size_t TraceRecorder::ApproxEventCount() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  size_t n = i.retired.size();
  for (ThreadTraceBuffer* buffer : i.live) {
    std::lock_guard<std::mutex> self(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void TraceSpan::Open() {
  ThreadTraceBuffer& buffer = LocalBuffer();
  depth_ = buffer.depth++;
  start_us_ = TraceNowUs();
}

void TraceSpan::Close() {
  const uint64_t end_us = TraceNowUs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  --buffer.depth;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.depth = depth_;
  event.args = std::move(args_);
  TraceRecorder::Global().Emit(std::move(event));
}

}  // namespace support
