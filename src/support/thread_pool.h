// A small fixed-size thread pool used by the parallel ripper and the bench
// harness. Work items are enqueued with Submit() and return std::futures;
// the pool drains and joins on destruction.
//
// Concurrency contract (see DESIGN.md "Performance architecture"): the GUI
// simulator is single-threaded by design — one gsim::Application instance per
// worker, never shared. The pool itself is only a task queue; determinism is
// achieved by the *callers* fixing seeds and aggregation order up front, so
// results are independent of scheduling.
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace support {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);

  // Waits for queued work to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Hardware concurrency with a sane floor (hardware_concurrency() may be 0).
  static size_t DefaultThreads();

  // Enqueues a callable; the returned future yields its result (or rethrows
  // its exception). Each task reports pool.wait_ms (enqueue -> start) and
  // pool.task_ms to the metrics registry; queue depth is observed at submit
  // time under the queue lock already being held. The submitter's trace
  // context (run id + current span id) is captured here and reinstalled on
  // the worker around the task, so spans opened inside the task parent to
  // the span that submitted the work, not to the worker's previous task.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    const int64_t enqueue_us = NowUs();
    QueuedJob job;
    job.ctx = CaptureSubmitContext();
    job.fn = [task, enqueue_us]() {
      const int64_t start_us = NowUs();
      (*task)();
      NoteTaskDone(enqueue_us, start_us, NowUs());
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(job));
      NoteSubmit(queue_.size());
    }
    cv_.notify_one();
    return future;
  }

 private:
  // Mirror of support::TraceContext, spelled out so this header stays free of
  // trace/metrics includes (the Submit template is instantiated widely).
  struct SubmitContext {
    uint64_t run_id = 0;
    uint64_t span_id = 0;
  };
  struct QueuedJob {
    std::function<void()> fn;
    SubmitContext ctx;
  };

  void WorkerLoop();

  // Metrics plumbing, defined in the .cc so the Submit template stays free of
  // trace/metrics includes. NowUs is the tracing monotonic clock.
  static int64_t NowUs();
  static SubmitContext CaptureSubmitContext();
  static void NoteSubmit(size_t queue_depth);
  static void NoteTaskDone(int64_t enqueue_us, int64_t start_us, int64_t end_us);

  std::vector<std::thread> workers_;
  std::deque<QueuedJob> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace support

#endif  // SRC_SUPPORT_THREAD_POOL_H_
