#include "src/support/thread_pool.h"

#include <algorithm>

namespace support {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace support
