#include "src/support/thread_pool.h"

#include <algorithm>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace support {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 2 : hw;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    TraceContextScope ctx(TraceContext{job.ctx.run_id, job.ctx.span_id});
    TraceSpan span("pool.task", "pool");
    job.fn();
  }
}

int64_t ThreadPool::NowUs() { return TraceNowUs(); }

ThreadPool::SubmitContext ThreadPool::CaptureSubmitContext() {
  const TraceContext ctx = CurrentTraceContext();
  return SubmitContext{ctx.run_id, ctx.span_id};
}

void ThreadPool::NoteSubmit(size_t queue_depth) {
  static Counter& submitted = MetricsRegistry::Global().GetCounter("pool.tasks_submitted");
  static Histogram& depth = MetricsRegistry::Global().GetHistogram(
      "pool.queue_depth", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  submitted.Increment();
  depth.Observe(static_cast<double>(queue_depth));
}

void ThreadPool::NoteTaskDone(int64_t enqueue_us, int64_t start_us, int64_t end_us) {
  static Counter& completed = MetricsRegistry::Global().GetCounter("pool.tasks_completed");
  completed.Increment();
  ObserveMetric("pool.wait_ms", static_cast<double>(start_us - enqueue_us) / 1000.0);
  ObserveMetric("pool.task_ms", static_cast<double>(end_us - start_us) / 1000.0);
}

}  // namespace support
