// Lightweight status / result types used across the DMI reproduction.
//
// Error handling convention (per C++ Core Guidelines E.*): recoverable,
// expected failures travel as `Status` / `Result<T>` values; programming
// errors are asserted. No exceptions cross library boundaries.
#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace support {

// Broad error taxonomy. Mirrors the structured error feedback DMI returns to
// the LLM (e.g. "target control located but disabled").
enum class StatusCode {
  kOk = 0,
  kNotFound,        // control / node / key absent
  kInvalidArgument, // malformed command, bad id, bad JSON
  kFailedPrecondition, // control disabled, pattern unsupported, wrong state
  kUnavailable,     // transient: control not yet loaded, window busy
  kDeadlineExceeded,// retry budget exhausted
  kInternal,        // invariant violation inside the executor
  kUnimplemented,
};

// Human-readable name for a status code ("NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A status value: a code plus an optional diagnostic message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no control named 'Apply to All'"
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}

// Result<T>: either a value or a non-OK Status. Minimal expected<T, Status>.
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return SomeError();`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  T& value() {
    assert(ok() && "value() on errored Result");
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok() && "value() on errored Result");
    return std::get<T>(data_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Value if ok, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace support

#endif  // SRC_SUPPORT_STATUS_H_
