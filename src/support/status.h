// Lightweight status / result types used across the DMI reproduction.
//
// Error handling convention (per C++ Core Guidelines E.*): recoverable,
// expected failures travel as `Status` / `Result<T>` values; programming
// errors are asserted. No exceptions cross library boundaries.
#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace support {

// Broad error taxonomy. Mirrors the structured error feedback DMI returns to
// the LLM (e.g. "target control located but disabled").
enum class StatusCode {
  kOk = 0,
  kNotFound,        // control / node / key absent
  kInvalidArgument, // malformed command, bad id, bad JSON
  kFailedPrecondition, // control disabled, pattern unsupported, wrong state
  kUnavailable,     // transient: control not yet loaded, window busy
  kDeadlineExceeded,// retry budget exhausted
  kInternal,        // invariant violation inside the executor
  kUnimplemented,
  kResourceExhausted, // admission refused: queue full, quota spent
  kCancelled,         // admitted work dropped before running (drain)
};

// Human-readable name for a status code ("NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// Structured error payload (paper §4.4 "the executor returns a structured
// status"). Carries everything a caller needs to make a *typed* retry /
// re-plan decision, instead of parsing it out of the message string:
// the offending control, the missing capability, whether the failure is
// transient, and how much robustness budget was already spent on it.
struct ErrorDetail {
  // Synthesized control id (ripper format) or topology node id as text;
  // empty when the failure is not tied to a specific control.
  std::string control_id;
  // Accessibility name of the offending control (true name when known).
  std::string control_name;
  // UIA pattern the operation needed but the control lacks / had fail
  // ("TogglePattern", "ScrollPattern", ...); empty otherwise.
  std::string required_pattern;
  // True when the failure is transient and a retry can succeed (slow load,
  // freeze window, transient pattern failure, stale reference).
  bool retryable = false;
  // Attempts consumed by the retry machinery before this status was returned
  // (1 = failed on the first try, no retries).
  int attempts = 0;
  // Total logical-clock ticks spent backing off between those attempts.
  uint64_t backoff_ticks = 0;

  bool operator==(const ErrorDetail& other) const {
    return control_id == other.control_id && control_name == other.control_name &&
           required_pattern == other.required_pattern && retryable == other.retryable &&
           attempts == other.attempts && backoff_ticks == other.backoff_ticks;
  }
};

// A status value: a code plus an optional diagnostic message and an optional
// structured ErrorDetail payload. ToString() deliberately renders only the
// code and message — its output is part of the LLM-feedback stability
// contract (DESIGN.md §11) and stays byte-identical whether or not a detail
// payload is attached.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Attaches a structured payload (fluent, works on temporaries):
  //   return UnavailableError("still loading").WithDetail(std::move(d));
  Status&& WithDetail(ErrorDetail detail) && {
    detail_ = std::make_shared<const ErrorDetail>(std::move(detail));
    return std::move(*this);
  }
  Status& WithDetail(ErrorDetail detail) & {
    detail_ = std::make_shared<const ErrorDetail>(std::move(detail));
    return *this;
  }

  bool has_detail() const { return detail_ != nullptr; }
  // Valid only when has_detail().
  const ErrorDetail& detail() const {
    assert(detail_ != nullptr && "detail() on a Status without detail");
    return *detail_;
  }

  // "NOT_FOUND: no control named 'Apply to All'"
  std::string ToString() const;

  // Equality is over (code, message) only: the detail payload is diagnostic
  // metadata and two statuses describing the same failure compare equal
  // whether or not one carries it (keeps pre-detail tests and golden
  // comparisons stable).
  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  std::shared_ptr<const ErrorDetail> detail_;  // shared: Status copies stay cheap
};

// Typed retry decision: a status is retryable when its detail says so, or —
// absent a detail payload — when the code is kUnavailable (the transient
// class by definition).
inline bool IsRetryable(const Status& status) {
  if (status.ok()) {
    return false;
  }
  if (status.has_detail()) {
    return status.detail().retryable;
  }
  return status.code() == StatusCode::kUnavailable;
}

inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status CancelledError(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}

// Result<T>: either a value or a non-OK Status. Minimal expected<T, Status>.
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return SomeError();`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  T& value() {
    assert(ok() && "value() on errored Result");
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok() && "value() on errored Result");
    return std::get<T>(data_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Value if ok, otherwise `fallback`.
  T value_or(T fallback) const { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace support

#endif  // SRC_SUPPORT_STATUS_H_
