// Minimal leveled logger. Defaults to warnings-and-above so tests and benches
// stay quiet; verbose modeling/navigation traces are enabled on demand.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr: "[LEVEL] message".
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: LogStream(kInfo) << "ripped " << n << " controls";
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace support

#define DMI_LOG(level) ::support::LogStream(::support::LogLevel::level)

#endif  // SRC_SUPPORT_LOGGING_H_
