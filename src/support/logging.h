// Minimal leveled logger. Defaults to warnings-and-above so tests and benches
// stay quiet; verbose modeling/navigation traces are enabled on demand.
//
// Concurrency: the level gate is a relaxed atomic, and LogMessage composes
// the complete line ("[LEVEL] message\n") in one buffer before a single
// stderr write, so lines from ThreadPool workers never interleave
// mid-message. DMI_LOG / DMI_LOG_IF check the level *before* evaluating the
// streamed arguments — a disabled log line costs one atomic load and never
// runs its operands.
#ifndef SRC_SUPPORT_LOGGING_H_
#define SRC_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Whether a message at `level` would be emitted (the macro fast path).
bool LogEnabled(LogLevel level);

// Emits one line to stderr: "[LEVEL] message". The full line is built in one
// buffer and written with a single call (interleaving-safe).
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: LogStream(kInfo) << "ripped " << n << " controls";
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the stream expression so the ternary in DMI_LOG_IF type-checks;
// the message is emitted by ~LogStream at the end of the full expression.
class LogVoidify {
 public:
  void operator&(const LogStream&) {}
};

}  // namespace support

// Level- (and condition-) gated logging that skips argument evaluation when
// disabled: DMI_LOG_IF(kDebug, retries > 0) << ExpensiveDump();
#define DMI_LOG_IF(level, condition)                                       \
  (!(::support::LogEnabled(::support::LogLevel::level) && (condition)))    \
      ? (void)0                                                            \
      : ::support::LogVoidify() &                                          \
            ::support::LogStream(::support::LogLevel::level)

#define DMI_LOG(level) DMI_LOG_IF(level, true)

#endif  // SRC_SUPPORT_LOGGING_H_
