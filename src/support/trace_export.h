// Exporters for the tracing/metrics subsystem (DESIGN.md §8).
//
// Lives in its own library (dmi_telemetry) because it renders through
// src/json, which itself depends on dmi_support — the instruments in
// trace.h/metrics.h must stay json-free to avoid the cycle.
//
// Formats:
//   - Chrome trace: a {"traceEvents": [...]} document of complete ("ph":"X")
//     events, loadable in chrome://tracing or https://ui.perfetto.dev.
//   - JSONL: one JSON object per line per event, for streaming consumers.
//   - Metrics JSON: counters, histograms (bounds/buckets/count/sum/mean/
//     bucketed p50/p95) plus derived pipeline rates (capture cache hit rate,
//     visit locate fast-path rate) when their counters exist.
#ifndef SRC_SUPPORT_TRACE_EXPORT_H_
#define SRC_SUPPORT_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/support/metrics.h"
#include "src/support/status.h"
#include "src/support/trace.h"

namespace support {

// ----- Chrome trace ----------------------------------------------------------

jsonv::Value ChromeTraceJson(const std::vector<TraceEvent>& events);
Status WriteChromeTrace(const std::string& path, const std::vector<TraceEvent>& events);

// ----- JSONL event stream ----------------------------------------------------

// One compact JSON object per event, newline-terminated.
std::string TraceJsonl(const std::vector<TraceEvent>& events);
Status WriteTraceJsonl(const std::string& path, const std::vector<TraceEvent>& events);

// ----- metrics ---------------------------------------------------------------

jsonv::Value MetricsJson(const MetricsSnapshot& snapshot);
Status WriteMetricsJson(const std::string& path, const MetricsSnapshot& snapshot);

}  // namespace support

#endif  // SRC_SUPPORT_TRACE_EXPORT_H_
