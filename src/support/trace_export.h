// Exporters for the tracing/metrics subsystem (DESIGN.md §8).
//
// Lives in its own library (dmi_telemetry) because it renders through
// src/json, which itself depends on dmi_support — the instruments in
// trace.h/metrics.h must stay json-free to avoid the cycle.
//
// Formats:
//   - Chrome trace: a {"traceEvents": [...]} document of complete ("ph":"X")
//     events, loadable in chrome://tracing or https://ui.perfetto.dev.
//   - JSONL: one JSON object per line per event, for streaming consumers.
//   - Metrics JSON: counters, histograms (bounds/buckets/count/sum/mean/
//     bucketed p50/p95) plus derived pipeline rates (capture cache hit rate,
//     visit locate fast-path rate) when their counters exist.
#ifndef SRC_SUPPORT_TRACE_EXPORT_H_
#define SRC_SUPPORT_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/json/json.h"
#include "src/support/flight_recorder.h"
#include "src/support/metrics.h"
#include "src/support/status.h"
#include "src/support/trace.h"

namespace support {

// ----- Chrome trace ----------------------------------------------------------

// Complete ("ph":"X") events plus flow ("ph":"s"/"f") events for the causal
// edges a nested timeline cannot show: a parent/child pair on different
// threads (a span submitted to the pool), and every span link (a batch flush
// fanning in its member calls). Events without causal context render exactly
// as they did before context existed — no extra args, no flows.
jsonv::Value ChromeTraceJson(const std::vector<TraceEvent>& events);
Status WriteChromeTrace(const std::string& path, const std::vector<TraceEvent>& events);

// ----- JSONL event stream ----------------------------------------------------

// One compact JSON object per event, newline-terminated.
std::string TraceJsonl(const std::vector<TraceEvent>& events);
Status WriteTraceJsonl(const std::string& path, const std::vector<TraceEvent>& events);

// ----- metrics ---------------------------------------------------------------

// Renders counters/histograms/derived rates as before; labeled series are
// added under a separate "labeled_counters" object (keyed by the encoded
// `name{k=v,...}` form) only when any exist, so the unlabeled document stays
// byte-identical.
jsonv::Value MetricsJson(const MetricsSnapshot& snapshot);
Status WriteMetricsJson(const std::string& path, const MetricsSnapshot& snapshot);

// ----- flight recorder -------------------------------------------------------

// The per-run postmortem document embedded in --report-json (DESIGN.md §13):
// {run_id, capacity, total_recorded, dropped, events:[...]} where each event
// renders its non-zero fields only and error_detail matches the report's
// final_status shape. Deterministic for a given recorder state.
jsonv::Value FlightRecorderJson(const FlightRecorder& recorder);

}  // namespace support

#endif  // SRC_SUPPORT_TRACE_EXPORT_H_
