// RetryPolicy / Deadline: the principled robustness budget primitives
// (DESIGN.md §11).
//
// Everything in the simulator runs on logical clocks (Application ticks), so
// both primitives are expressed in ticks, not wall time:
//   - RetryPolicy bounds *attempts* and spaces them with exponential backoff
//     (optionally jittered from the run's seeded RNG — deterministic per
//     seed, decorrelated across controls);
//   - Deadline bounds the *total* tick budget of a run; every retry loop
//     checks it so exhaustion surfaces as kDeadlineExceeded instead of an
//     unbounded stall under a frozen or hostile UI.
// Both are plain value types: cheap to copy, thread-safe to share.
#ifndef SRC_SUPPORT_RETRY_H_
#define SRC_SUPPORT_RETRY_H_

#include <cstdint>

#include "src/support/rng.h"

namespace support {

// Attempt budget + backoff schedule. `max_attempts` counts the first try:
// max_attempts == 1 means "no retries"; 0 is a sentinel for "unset" that
// callers resolve against their legacy knobs (see dmi::VisitConfig).
struct RetryPolicy {
  int max_attempts = 0;
  // Backoff before retry k (k = 1 is the first retry) is
  //   min(initial_backoff_ticks * multiplier^(k-1), max_backoff_ticks)
  // ticks, plus +/- jitter * backoff sampled uniformly from `rng`.
  uint64_t initial_backoff_ticks = 1;
  double backoff_multiplier = 1.0;
  uint64_t max_backoff_ticks = 16;
  double jitter = 0.0;  // fraction in [0,1]; 0 = fully deterministic schedule

  // No retries at all: fail on the first error.
  static RetryPolicy None();
  // The legacy fixed loop: `retries` extra attempts, one tick between each —
  // byte-compatible with the old VisitConfig::max_retries behaviour.
  static RetryPolicy FixedTicks(int retries);
  // Exponential backoff with a jitter fraction; the aggressive preset used by
  // dmi::Policy::Hostile().
  static RetryPolicy ExponentialJitter(int max_attempts, uint64_t initial_ticks,
                                       double multiplier, uint64_t max_ticks,
                                       double jitter);

  bool unset() const { return max_attempts <= 0; }
  // True when a failed attempt `attempt` (1-based) leaves budget for another.
  bool ShouldRetry(int attempt) const { return attempt < max_attempts; }

  // Backoff ticks to wait before retry number `retry` (1-based). Draws from
  // `rng` only when jitter > 0, so the zero-jitter schedule consumes no
  // randomness (keeps legacy RNG streams byte-identical).
  uint64_t BackoffTicks(int retry, Rng& rng) const;
};

// A per-run monotonic-tick budget. Constructed from the clock's current value
// and a budget; callers pass the current tick to every query (the support
// layer stays independent of gsim::Application).
class Deadline {
 public:
  // Unlimited deadline: never expires.
  Deadline() = default;

  static Deadline Unlimited() { return Deadline(); }
  static Deadline AtTicks(uint64_t start_tick, uint64_t budget_ticks) {
    Deadline d;
    d.unlimited_ = false;
    d.start_ = start_tick;
    d.budget_ = budget_ticks;
    return d;
  }

  bool unlimited() const { return unlimited_; }
  uint64_t start_tick() const { return start_; }
  uint64_t budget_ticks() const { return budget_; }

  bool Expired(uint64_t now_tick) const {
    return !unlimited_ && now_tick >= start_ + budget_;
  }
  // Remaining budget (0 when expired; a large sentinel when unlimited).
  uint64_t RemainingTicks(uint64_t now_tick) const {
    if (unlimited_) {
      return UINT64_MAX;
    }
    const uint64_t end = start_ + budget_;
    return now_tick >= end ? 0 : end - now_tick;
  }

 private:
  bool unlimited_ = true;
  uint64_t start_ = 0;
  uint64_t budget_ = 0;
};

}  // namespace support

#endif  // SRC_SUPPORT_RETRY_H_
