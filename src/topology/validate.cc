#include "src/topology/validate.h"

#include <set>

#include "src/support/strings.h"

namespace topo {
namespace {

// True if `path` is a valid walk in the DAG starting at a root successor.
bool IsValidWalk(const NavGraph& dag, const std::vector<int>& path) {
  if (path.empty()) {
    return false;
  }
  int prev = NavGraph::kRootIndex;
  for (int node : path) {
    const auto& succ = dag.successors(prev);
    bool found = false;
    for (int s : succ) {
      if (s == node) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
    prev = node;
  }
  return true;
}

// All reference ids pointing at the given shared subtree.
std::vector<int> RefsTo(const Forest& forest, int subtree) {
  std::vector<int> refs;
  auto scan = [&](const Tree& tree) {
    for (const TreeNode& n : tree.nodes) {
      if (n.is_reference && n.ref_subtree == subtree) {
        refs.push_back(n.id);
      }
    }
  };
  scan(forest.main());
  for (const Tree& t : forest.shared()) {
    scan(t);
  }
  return refs;
}

}  // namespace

ValidationReport ValidatePaths(const NavGraph& dag, const Forest& forest) {
  ValidationReport report;
  for (int id : forest.AllIds()) {
    const TreeNode* node = forest.FindById(id);
    if (node->is_reference) {
      continue;
    }
    if (node->graph_index == NavGraph::kRootIndex) {
      continue;  // the virtual root has no path
    }
    auto loc = forest.LocateById(id);
    if (loc->tree < 0) {
      auto path = forest.ResolvePath(id, {});
      if (!path.ok()) {
        report.Fail(support::Format("id %d (main tree): %s", id,
                                    path.status().ToString().c_str()));
        continue;
      }
      if (!IsValidWalk(dag, *path)) {
        report.Fail(support::Format("id %d: resolved path is not a DAG walk", id));
      } else if (path->back() != node->graph_index) {
        report.Fail(support::Format("id %d: path ends at wrong node", id));
      }
    } else {
      // Shared-subtree target: every entry reference must give a valid walk.
      std::vector<int> refs = RefsTo(forest, loc->tree);
      if (refs.empty()) {
        report.Fail(support::Format("shared subtree %d has no references", loc->tree));
        continue;
      }
      std::set<std::vector<int>> distinct;
      for (int ref : refs) {
        // Build a complete reference chain from this ref up to the main tree
        // (nested shared subtrees need one ref per level).
        std::vector<int> all_refs = {ref};
        int cursor = ref;
        bool chain_ok = true;
        for (int hop = 0; hop < 16; ++hop) {
          auto loc2 = forest.LocateById(cursor);
          if (!loc2.ok() || loc2->tree < 0) {
            break;  // reached the main tree
          }
          std::vector<int> outer = RefsTo(forest, loc2->tree);
          if (outer.empty()) {
            chain_ok = false;
            break;
          }
          all_refs.push_back(outer[0]);
          cursor = outer[0];
        }
        if (!chain_ok) {
          report.Fail(support::Format("ref %d has no chain to the main tree", ref));
          continue;
        }
        auto path = forest.ResolvePath(id, all_refs);
        if (!path.ok()) {
          report.Fail(support::Format("id %d via ref %d: %s", id, ref,
                                      path.status().ToString().c_str()));
          continue;
        }
        if (!IsValidWalk(dag, *path)) {
          report.Fail(support::Format("id %d via ref %d: not a DAG walk", id, ref));
        } else if (path->back() != node->graph_index) {
          report.Fail(support::Format("id %d via ref %d: wrong endpoint", id, ref));
        }
        distinct.insert(*path);
      }
      if (distinct.size() != refs.size()) {
        // Two refs giving the same path would mean redundant references;
        // harmless but worth surfacing — only flag exact duplicates.
        // (Not a failure: shared palettes may legitimately be referenced from
        // controls whose paths coincide after cloning.)
      }
    }
    // Missing-ref error check: shared targets without refs must error.
    if (loc->tree >= 0) {
      auto no_ref = forest.ResolvePath(id, {});
      if (no_ref.ok()) {
        report.Fail(support::Format(
            "id %d resolved without entry refs despite living in a shared subtree", id));
      }
    }
  }
  return report;
}

ValidationReport ValidateCompleteness(const NavGraph& dag, const Forest& forest) {
  ValidationReport report;
  std::set<int> covered;
  auto scan = [&covered](const Tree& tree) {
    for (const TreeNode& n : tree.nodes) {
      if (!n.is_reference) {
        covered.insert(n.graph_index);
      }
    }
  };
  scan(forest.main());
  for (const Tree& t : forest.shared()) {
    scan(t);
  }
  const std::vector<bool> reachable = dag.Reachable();
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (reachable[i] && covered.count(static_cast<int>(i)) == 0) {
      report.Fail(support::Format("reachable DAG node %zu ('%s') missing from forest",
                                  i, dag.node(static_cast<int>(i)).name.c_str()));
    }
  }
  return report;
}

ValidationReport ValidateForest(const NavGraph& dag, const Forest& forest) {
  ValidationReport report = ValidatePaths(dag, forest);
  ValidationReport completeness = ValidateCompleteness(dag, forest);
  if (!completeness.ok) {
    report.ok = false;
    for (auto& p : completeness.problems) {
      report.problems.push_back(std::move(p));
    }
  }
  return report;
}

}  // namespace topo
