// Graph -> DAG -> path-unambiguous forest (paper §3.2).
//
// Two transformations:
//  1. Decycle: remove DFS back-edges from the single-source UNG, yielding a
//     single-source DAG.
//  2. Path disambiguation: turn the DAG into a *forest* — a main tree plus
//     shared subtrees. A naive approach clones every merge node's substructure
//     along each in-edge (exponential blow-up); the paper's cost-based
//     selective externalization instead externalizes a merge node as a shared
//     subtree when its cloning cost exceeds a threshold, redirecting in-edges
//     to new *reference nodes*. The LLM then declares a target id plus
//     (typically one) entry reference id; the executor resolves a unique
//     root-to-target navigation path.
#ifndef SRC_TOPOLOGY_TRANSFORM_H_
#define SRC_TOPOLOGY_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "src/support/status.h"
#include "src/topology/nav_graph.h"

namespace topo {

struct DecycleResult {
  NavGraph dag;
  size_t removed_back_edges = 0;
  size_t unreachable_dropped = 0;
};

// Removes back-edges found by DFS from the root; drops nodes unreachable
// from the root. Preserves node indices/ids of reachable nodes.
DecycleResult Decycle(const NavGraph& graph);

// Size of the naive full-clone tree (every merge node duplicated along all
// in-edges), computed without materializing. Saturates at kSaturated.
inline constexpr uint64_t kCloneCountSaturated = UINT64_MAX;
uint64_t NaiveCloneCount(const NavGraph& dag);

// One node of an output tree.
struct TreeNode {
  int graph_index = -1;   // original DAG node; -1 for reference nodes
  int id = 0;             // unique consecutive id across the whole forest
  int parent = -1;        // index within the owning tree's node vector
  std::vector<int> children;
  bool is_reference = false;
  int ref_subtree = -1;   // shared-subtree index this reference points at
};

struct Tree {
  std::vector<TreeNode> nodes;  // nodes[0] is the tree root
};

// Where a forest id lives: tree < 0 means the main tree, otherwise the index
// of a shared subtree.
struct ForestLocation {
  int tree = -1;
  int node = -1;
};

// One reference node and the shared subtree it points at, in forest scan
// order (main tree first, then shared subtrees, node order within a tree).
struct ReferenceEntry {
  int ref_id = 0;
  int subtree = -1;
};

// Raw forest state captured by the binary model-artifact writer and adopted
// wholesale by the loader (DESIGN.md §14): the trees plus both precomputed
// indexes, so a cold load re-derives nothing.
struct ForestParts {
  Tree main;
  std::vector<Tree> shared;
  std::vector<ForestLocation> loc_by_id;
  std::vector<ReferenceEntry> all_refs;
  std::vector<std::vector<int>> refs_by_subtree;
  int max_id = 0;
};

class Forest {
 public:
  const Tree& main() const { return main_; }
  const std::vector<Tree>& shared() const { return shared_; }

  // Adopts parts captured from an existing forest. Structural validity is
  // the artifact checksum's job; this only rejects an index table whose size
  // disagrees with max_id (the invariant every dense probe relies on).
  static support::Result<Forest> FromParts(ForestParts parts);

  // Raw access to the precomputed indexes, for the artifact writer.
  const std::vector<ForestLocation>& LocationTable() const { return loc_by_id_; }
  const std::vector<std::vector<int>>& RefsBySubtree() const { return refs_by_subtree_; }

  // Total nodes across main + shared trees (reference nodes included).
  size_t total_nodes() const;
  size_t reference_count() const { return all_refs_.size(); }

  // Lookup by assigned id; nullptr if unknown. Ids are consecutive from 1, so
  // these are O(1) dense-vector probes, not map lookups.
  const TreeNode* FindById(int id) const;
  const TreeNode* NodeAt(ForestLocation loc) const;
  support::Result<ForestLocation> LocateById(int id) const;

  // ----- reverse-reference index ---------------------------------------------
  // Precomputed at SelectiveExternalize time (the forest is immutable after
  // construction), replacing the per-query full-forest scans previously done
  // by the entry-map serializer and name-chain resolution.
  //
  // Every reference node, in forest scan order.
  const std::vector<ReferenceEntry>& AllReferences() const { return all_refs_; }
  // Ids of the reference nodes pointing directly at shared subtree `subtree`,
  // in forest scan order; empty for out-of-range indices.
  const std::vector<int>& RefsTo(int subtree) const;

  // True if the node with this id has no children (functional endpoint).
  // Reference nodes are not leaves.
  bool IsLeaf(int id) const;

  // The graph node underlying a forest id (reference nodes resolve to the
  // root of their target shared subtree).
  int GraphIndexOf(int id) const;

  // Resolves the unique root-to-target navigation path for `target_id`,
  // returning original-graph node indices from (excluding) the virtual root
  // down to the target. Targets inside shared subtrees need entry reference
  // ids (outermost first); missing/wrong refs produce structured errors the
  // LLM can act on (paper §3.4 "structured error feedback").
  support::Result<std::vector<int>> ResolvePath(int target_id,
                                                const std::vector<int>& entry_ref_ids) const;

  // All assigned ids, ascending.
  std::vector<int> AllIds() const;
  int max_id() const { return max_id_; }

  // Depth of a node within its tree (root = 0).
  int DepthOf(int id) const;

 private:
  friend Forest SelectiveExternalize(const NavGraph& dag, uint64_t cost_threshold);

  Tree main_;
  std::vector<Tree> shared_;
  // Dense id -> location table (ids are consecutive from 1; slot 0 unused).
  std::vector<ForestLocation> loc_by_id_;
  std::vector<ReferenceEntry> all_refs_;
  std::vector<std::vector<int>> refs_by_subtree_;
  int max_id_ = 0;
};

// The paper's cost-based selective externalization. Processes merge nodes in
// reverse topological order; a node whose cloning cost
// (indegree - 1) * subtree_size exceeds `cost_threshold` becomes a shared
// subtree with reference nodes at each former in-edge. Threshold 0
// externalizes every merge node; a huge threshold reproduces naive cloning.
Forest SelectiveExternalize(const NavGraph& dag, uint64_t cost_threshold);

inline constexpr uint64_t kDefaultExternalizeThreshold = 24;

}  // namespace topo

#endif  // SRC_TOPOLOGY_TRANSFORM_H_
