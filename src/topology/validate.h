// Validation of the path-unambiguous topology invariants (paper §3.2):
//   - uniqueness: every forest id resolves to exactly one root-to-target path;
//   - completeness: every DAG node reachable from the root appears in the
//     forest at least once (reachability is preserved);
//   - boundedness: forest size stays linear where naive cloning explodes.
#ifndef SRC_TOPOLOGY_VALIDATE_H_
#define SRC_TOPOLOGY_VALIDATE_H_

#include <string>
#include <vector>

#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace topo {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> problems;

  void Fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
};

// Checks that every non-reference forest node's resolved path is a valid walk
// in the DAG ending at that node's graph index, and that each id resolves to
// one unique path. For targets in shared subtrees, resolution is attempted
// through every reference pointing at the subtree — each must give a valid
// (distinct) walk.
ValidationReport ValidatePaths(const NavGraph& dag, const Forest& forest);

// Checks every reachable DAG node is represented in the forest.
ValidationReport ValidateCompleteness(const NavGraph& dag, const Forest& forest);

// Convenience: all checks.
ValidationReport ValidateForest(const NavGraph& dag, const Forest& forest);

}  // namespace topo

#endif  // SRC_TOPOLOGY_VALIDATE_H_
