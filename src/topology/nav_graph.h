// The UI Navigation Graph (UNG) — paper §3.2.
//
// A directed graph G = (V, E): nodes are UI controls discovered by the ripper
// (identified by XPath-like control ids), edges capture click-induced
// reachability. Node 0 is always the virtual root (§4.1 "Root node
// initialization"); every other node is reachable from it.
#ifndef SRC_TOPOLOGY_NAV_GRAPH_H_
#define SRC_TOPOLOGY_NAV_GRAPH_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/json/json.h"
#include "src/support/status.h"
#include "src/uia/control_type.h"

namespace topo {

struct NodeInfo {
  // XPath-like identifier: primary_id|control_type|ancestor_path (§4.1).
  // Unique key within the graph.
  std::string control_id;
  std::string name;
  uia::ControlType type = uia::ControlType::kCustom;
  std::string description;   // UIA help text, if any
  std::string automation_id;
};

struct GraphStats {
  size_t nodes = 0;
  size_t edges = 0;
  size_t merge_nodes = 0;   // nodes with in-degree > 1
  size_t back_edges = 0;    // edges removed by decycling (on the DAG: 0)
  int max_depth = 0;        // longest shortest-path from the root
};

class NavGraph {
 public:
  static constexpr int kRootIndex = 0;

  // Creates a graph containing only the virtual root.
  NavGraph();

  // Copies share no state; the copy gets its own lazy-index flag so a graph
  // copied before its index materialized builds one independently. (Needed
  // because std::once_flag itself is neither copyable nor movable.)
  NavGraph(const NavGraph& other);
  NavGraph& operator=(const NavGraph& other);
  NavGraph(NavGraph&&) = default;
  NavGraph& operator=(NavGraph&&) = default;

  // Adds a node (deduplicated by control_id); returns its index.
  int AddNode(const NodeInfo& info);

  // Index of the node with this control id, or -1.
  int FindNode(const std::string& control_id) const;

  // Adds edge from->to (deduplicated, self-loops dropped).
  void AddEdge(int from, int to);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const;

  const NodeInfo& node(int index) const { return nodes_[static_cast<size_t>(index)]; }
  // Mutable access for post-processing passes (description augmentation).
  NodeInfo& mutable_node(int index) { return nodes_[static_cast<size_t>(index)]; }
  const std::vector<int>& successors(int index) const {
    return adjacency_[static_cast<size_t>(index)];
  }

  // In-degrees for all nodes (index-aligned).
  std::vector<int> InDegrees() const;

  // Nodes reachable from the root.
  std::vector<bool> Reachable() const;

  GraphStats ComputeStats() const;

  // Adds every node and edge of `other` into this graph (deduplicated by
  // control_id; edge endpoints remapped). Used to combine per-context rips.
  void MergeFrom(const NavGraph& other);

  // A copy with a canonical layout: the root stays at index 0, all other
  // nodes are ordered by control_id, and each adjacency list is sorted.
  // Graphs built from the same node/edge *sets* in any insertion order
  // canonicalize to identical objects, which is what makes serial and
  // parallel multi-context rips comparable bit-for-bit.
  NavGraph Canonicalized() const;

  // Serialization (ripped models are version-specific but reusable, §5.2).
  jsonv::Value ToJson() const;
  static support::Result<NavGraph> FromJson(const jsonv::Value& value);

  // Bulk reconstruction from parallel node/adjacency arrays (the binary
  // model-artifact load path, DESIGN.md §14): nodes[0] must be the virtual
  // root. Unlike AddNode/AddEdge this adopts the arrays wholesale and
  // validates shape (aligned arrays, unique control ids via sorted hashes,
  // in-range edge targets) instead of deduplicating. The string-keyed index
  // is NOT materialized eagerly (the map rebuild costs ~4x the rest of the
  // DAG parse); the first FindNode/AddNode/MergeFrom on such a graph builds
  // it once (call_once, safe under concurrent readers) and lookups are O(1)
  // from then on.
  static support::Result<NavGraph> FromParts(std::vector<NodeInfo> nodes,
                                             std::vector<std::vector<int>> adjacency);

 private:
  // Builds index_by_id_ from nodes_ if it was skipped (FromParts). Safe to
  // call from concurrent FindNode readers; mutating paths (AddNode) are
  // single-threaded by contract, as before.
  void EnsureIndex() const;

  std::vector<NodeInfo> nodes_;
  std::vector<std::vector<int>> adjacency_;
  mutable std::unordered_map<std::string, int> index_by_id_;
  mutable std::unique_ptr<std::once_flag> index_once_;
};

}  // namespace topo

#endif  // SRC_TOPOLOGY_NAV_GRAPH_H_
