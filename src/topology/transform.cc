#include "src/topology/transform.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

#include "src/support/strings.h"

namespace topo {
namespace {

// Iterative DFS classifying back-edges (edge to a node on the current stack).
struct DfsClassification {
  std::vector<std::pair<int, int>> back_edges;
  std::vector<bool> reachable;
};

DfsClassification ClassifyEdges(const NavGraph& graph) {
  const size_t n = graph.node_count();
  DfsClassification out;
  out.reachable.assign(n, false);
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  // Explicit stack of (node, next-successor-index).
  std::vector<std::pair<int, size_t>> stack;
  stack.emplace_back(NavGraph::kRootIndex, 0);
  color[NavGraph::kRootIndex] = Color::kGray;
  out.reachable[NavGraph::kRootIndex] = true;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto& succ = graph.successors(node);
    if (next >= succ.size()) {
      color[static_cast<size_t>(node)] = Color::kBlack;
      stack.pop_back();
      continue;
    }
    const int to = succ[next++];
    switch (color[static_cast<size_t>(to)]) {
      case Color::kWhite:
        color[static_cast<size_t>(to)] = Color::kGray;
        out.reachable[static_cast<size_t>(to)] = true;
        stack.emplace_back(to, 0);
        break;
      case Color::kGray:
        out.back_edges.emplace_back(node, to);
        break;
      case Color::kBlack:
        break;  // forward/cross edge: fine in a DAG
    }
  }
  return out;
}

// Topological order of a DAG (root first). Assumes acyclic input.
std::vector<int> TopoOrder(const NavGraph& dag) {
  std::vector<int> indeg = dag.InDegrees();
  std::vector<int> order;
  order.reserve(dag.node_count());
  std::vector<int> ready;
  for (size_t i = 0; i < dag.node_count(); ++i) {
    if (indeg[i] == 0) {
      ready.push_back(static_cast<int>(i));
    }
  }
  while (!ready.empty()) {
    int n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (int to : dag.successors(n)) {
      if (--indeg[static_cast<size_t>(to)] == 0) {
        ready.push_back(to);
      }
    }
  }
  assert(order.size() == dag.node_count() && "TopoOrder called on cyclic graph");
  return order;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a > kCloneCountSaturated - b ? kCloneCountSaturated : a + b;
}

}  // namespace

DecycleResult Decycle(const NavGraph& graph) {
  DfsClassification cls = ClassifyEdges(graph);
  // Hash-set back-edge lookup: O(1) per edge instead of a linear scan over
  // every back edge for every edge (O(E·B) on menu-heavy graphs).
  std::unordered_set<uint64_t> back_edge_keys;
  back_edge_keys.reserve(cls.back_edges.size());
  auto edge_key = [](int from, int to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  };
  for (const auto& [f, t] : cls.back_edges) {
    back_edge_keys.insert(edge_key(f, t));
  }
  auto is_back_edge = [&](int from, int to) {
    return back_edge_keys.count(edge_key(from, to)) > 0;
  };

  DecycleResult result;
  result.removed_back_edges = cls.back_edges.size();
  // Re-add reachable nodes (order-preserving), then non-back edges.
  std::vector<int> remap(graph.node_count(), -1);
  remap[NavGraph::kRootIndex] = NavGraph::kRootIndex;
  for (size_t i = 1; i < graph.node_count(); ++i) {
    if (cls.reachable[i]) {
      remap[i] = result.dag.AddNode(graph.node(static_cast<int>(i)));
    } else {
      ++result.unreachable_dropped;
    }
  }
  for (size_t from = 0; from < graph.node_count(); ++from) {
    if (!cls.reachable[from]) {
      continue;
    }
    for (int to : graph.successors(static_cast<int>(from))) {
      if (!cls.reachable[static_cast<size_t>(to)]) {
        continue;
      }
      if (is_back_edge(static_cast<int>(from), to)) {
        continue;
      }
      result.dag.AddEdge(remap[from], remap[static_cast<size_t>(to)]);
    }
  }
  return result;
}

uint64_t NaiveCloneCount(const NavGraph& dag) {
  // f(n) = 1 + sum f(child): the number of nodes in the full expansion of the
  // subtree rooted at n when every DAG diamond is duplicated.
  const std::vector<int> order = TopoOrder(dag);
  std::vector<uint64_t> f(dag.node_count(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint64_t total = 1;
    for (int to : dag.successors(*it)) {
      total = SaturatingAdd(total, f[static_cast<size_t>(to)]);
    }
    f[static_cast<size_t>(*it)] = total;
  }
  return f[NavGraph::kRootIndex];
}

support::Result<Forest> Forest::FromParts(ForestParts parts) {
  if (parts.loc_by_id.size() != static_cast<size_t>(parts.max_id) + 1) {
    return support::InvalidArgumentError(
        "forest location table size " + std::to_string(parts.loc_by_id.size()) +
        " disagrees with max_id " + std::to_string(parts.max_id));
  }
  if (parts.refs_by_subtree.size() != parts.shared.size()) {
    return support::InvalidArgumentError(
        "forest reverse-reference index covers " + std::to_string(parts.refs_by_subtree.size()) +
        " subtrees but the forest has " + std::to_string(parts.shared.size()));
  }
  Forest forest;
  forest.main_ = std::move(parts.main);
  forest.shared_ = std::move(parts.shared);
  forest.loc_by_id_ = std::move(parts.loc_by_id);
  forest.all_refs_ = std::move(parts.all_refs);
  forest.refs_by_subtree_ = std::move(parts.refs_by_subtree);
  forest.max_id_ = parts.max_id;
  return forest;
}

Forest SelectiveExternalize(const NavGraph& dag, uint64_t cost_threshold) {
  const std::vector<int> order = TopoOrder(dag);
  const std::vector<int> indeg = dag.InDegrees();
  const size_t n = dag.node_count();

  // Pass 1 (reverse topological): decide externalization and compute the
  // *effective* subtree size of each node — externalized children count as a
  // single reference node.
  std::vector<bool> externalized(n, false);
  std::vector<uint64_t> eff_size(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int node = *it;
    uint64_t size = 1;
    for (int to : dag.successors(node)) {
      if (externalized[static_cast<size_t>(to)]) {
        size = SaturatingAdd(size, 1);  // reference node
      } else {
        size = SaturatingAdd(size, eff_size[static_cast<size_t>(to)]);
      }
    }
    eff_size[static_cast<size_t>(node)] = size;
    const int d = indeg[static_cast<size_t>(node)];
    if (d > 1) {
      const uint64_t clone_cost = static_cast<uint64_t>(d - 1) * size;
      if (clone_cost > cost_threshold) {
        externalized[static_cast<size_t>(node)] = true;
      }
    }
  }

  // Shared-subtree index per externalized node, in topological order so the
  // serialized output is stable.
  Forest forest;
  std::vector<int> subtree_index(n, -1);
  for (int node : order) {
    if (externalized[static_cast<size_t>(node)]) {
      subtree_index[static_cast<size_t>(node)] = static_cast<int>(forest.shared_.size());
      forest.shared_.emplace_back();
    }
  }

  // Pass 2: materialize trees. Cloning is a DFS that duplicates non-
  // externalized children and emits reference nodes for externalized ones.
  int next_id = 1;
  std::function<void(Tree&, int, int)> emit = [&](Tree& tree, int graph_node, int parent) {
    const int my_index = static_cast<int>(tree.nodes.size());
    TreeNode tn;
    tn.graph_index = graph_node;
    tn.id = next_id++;
    tn.parent = parent;
    tree.nodes.push_back(tn);
    if (parent >= 0) {
      tree.nodes[static_cast<size_t>(parent)].children.push_back(my_index);
    }
    for (int to : dag.successors(graph_node)) {
      if (externalized[static_cast<size_t>(to)]) {
        const int ref_index = static_cast<int>(tree.nodes.size());
        TreeNode ref;
        ref.graph_index = to;  // resolves to the shared subtree's root control
        ref.id = next_id++;
        ref.parent = my_index;
        ref.is_reference = true;
        ref.ref_subtree = subtree_index[static_cast<size_t>(to)];
        tree.nodes.push_back(ref);
        tree.nodes[static_cast<size_t>(my_index)].children.push_back(ref_index);
      } else {
        emit(tree, to, my_index);
      }
    }
  };

  emit(forest.main_, NavGraph::kRootIndex, -1);
  for (int node : order) {
    if (externalized[static_cast<size_t>(node)]) {
      Tree& tree = forest.shared_[static_cast<size_t>(subtree_index[static_cast<size_t>(node)])];
      emit(tree, node, -1);
    }
  }

  // Index ids (ids are consecutive from 1: a dense vector keyed by id) and
  // build the reverse-reference index in the same scan.
  forest.max_id_ = next_id - 1;
  forest.loc_by_id_.assign(static_cast<size_t>(forest.max_id_) + 1, ForestLocation{-1, -1});
  forest.refs_by_subtree_.resize(forest.shared_.size());
  auto index_tree = [&forest](const Tree& tree, int tree_idx) {
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const TreeNode& node = tree.nodes[i];
      forest.loc_by_id_[static_cast<size_t>(node.id)] =
          ForestLocation{tree_idx, static_cast<int>(i)};
      if (node.is_reference) {
        forest.all_refs_.push_back(ReferenceEntry{node.id, node.ref_subtree});
        forest.refs_by_subtree_[static_cast<size_t>(node.ref_subtree)].push_back(node.id);
      }
    }
  };
  index_tree(forest.main_, -1);
  for (size_t s = 0; s < forest.shared_.size(); ++s) {
    index_tree(forest.shared_[s], static_cast<int>(s));
  }
  return forest;
}

size_t Forest::total_nodes() const {
  size_t total = main_.nodes.size();
  for (const Tree& t : shared_) {
    total += t.nodes.size();
  }
  return total;
}

const std::vector<int>& Forest::RefsTo(int subtree) const {
  static const std::vector<int> kEmpty;
  if (subtree < 0 || subtree >= static_cast<int>(refs_by_subtree_.size())) {
    return kEmpty;
  }
  return refs_by_subtree_[static_cast<size_t>(subtree)];
}

const TreeNode* Forest::NodeAt(ForestLocation loc) const {
  const Tree& tree = loc.tree < 0 ? main_ : shared_[static_cast<size_t>(loc.tree)];
  if (loc.node < 0 || loc.node >= static_cast<int>(tree.nodes.size())) {
    return nullptr;
  }
  return &tree.nodes[static_cast<size_t>(loc.node)];
}

support::Result<ForestLocation> Forest::LocateById(int id) const {
  if (id <= 0 || id >= static_cast<int>(loc_by_id_.size()) ||
      loc_by_id_[static_cast<size_t>(id)].node < 0) {
    return support::NotFoundError(
        support::Format("no control with id %d in the navigation topology", id));
  }
  return loc_by_id_[static_cast<size_t>(id)];
}

const TreeNode* Forest::FindById(int id) const {
  if (id <= 0 || id >= static_cast<int>(loc_by_id_.size()) ||
      loc_by_id_[static_cast<size_t>(id)].node < 0) {
    return nullptr;
  }
  return NodeAt(loc_by_id_[static_cast<size_t>(id)]);
}

bool Forest::IsLeaf(int id) const {
  const TreeNode* node = FindById(id);
  return node != nullptr && !node->is_reference && node->children.empty();
}

int Forest::GraphIndexOf(int id) const {
  const TreeNode* node = FindById(id);
  return node == nullptr ? -1 : node->graph_index;
}

int Forest::DepthOf(int id) const {
  auto loc = LocateById(id);
  if (!loc.ok()) {
    return -1;
  }
  const Tree& tree = loc->tree < 0 ? main_ : shared_[static_cast<size_t>(loc->tree)];
  int depth = 0;
  int cursor = loc->node;
  while (tree.nodes[static_cast<size_t>(cursor)].parent >= 0) {
    cursor = tree.nodes[static_cast<size_t>(cursor)].parent;
    ++depth;
  }
  return depth;
}

std::vector<int> Forest::AllIds() const {
  std::vector<int> ids;
  ids.reserve(loc_by_id_.size());
  for (size_t id = 1; id < loc_by_id_.size(); ++id) {
    if (loc_by_id_[id].node >= 0) {
      ids.push_back(static_cast<int>(id));
    }
  }
  return ids;
}

support::Result<std::vector<int>> Forest::ResolvePath(
    int target_id, const std::vector<int>& entry_ref_ids) const {
  auto target_loc = LocateById(target_id);
  if (!target_loc.ok()) {
    return target_loc.status();
  }
  const TreeNode* target = NodeAt(*target_loc);
  if (target->is_reference) {
    return support::InvalidArgumentError(
        support::Format("id %d is a reference node, not a control; declare the target "
                        "inside the shared subtree instead", target_id));
  }

  // Path within the target's own tree, root..target (graph indices).
  auto path_in_tree = [this](ForestLocation loc) {
    const Tree& tree = loc.tree < 0 ? main_ : shared_[static_cast<size_t>(loc.tree)];
    std::vector<int> chain;
    int cursor = loc.node;
    while (cursor >= 0) {
      chain.push_back(tree.nodes[static_cast<size_t>(cursor)].graph_index);
      cursor = tree.nodes[static_cast<size_t>(cursor)].parent;
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
  };

  std::vector<int> path = path_in_tree(*target_loc);

  // Climb out of shared subtrees via the provided entry references. Several
  // provided refs can point at the same subtree (with different viability),
  // so this is a small backtracking search over the provided set.
  std::function<bool(int, std::vector<bool>&, std::vector<int>&)> climb =
      [&](int current_tree, std::vector<bool>& used, std::vector<int>& prefix_out) {
        if (current_tree < 0) {
          return true;  // reached the main tree
        }
        for (size_t i = 0; i < entry_ref_ids.size(); ++i) {
          if (used[i]) {
            continue;
          }
          const TreeNode* ref = FindById(entry_ref_ids[i]);
          if (ref == nullptr || !ref->is_reference || ref->ref_subtree != current_tree) {
            continue;
          }
          auto ref_loc = LocateById(entry_ref_ids[i]);
          if (!ref_loc.ok()) {
            continue;
          }
          used[i] = true;
          // Path to the reference node's parent (the host control); the
          // reference duplicates the subtree root already present in `path`.
          std::vector<int> hop = path_in_tree(*ref_loc);
          hop.pop_back();
          std::vector<int> upper;
          if (climb(ref_loc->tree, used, upper)) {
            prefix_out = std::move(upper);
            prefix_out.insert(prefix_out.end(), hop.begin(), hop.end());
            return true;
          }
          used[i] = false;
        }
        return false;
      };

  if (target_loc->tree >= 0) {
    std::vector<bool> used(entry_ref_ids.size(), false);
    std::vector<int> prefix;
    if (!climb(target_loc->tree, used, prefix)) {
      return support::FailedPreconditionError(support::Format(
          "target id %d lives in shared subtree %d; provide its entry_ref_id chain "
          "(reference nodes leading to that subtree)", target_id, target_loc->tree));
    }
    path.insert(path.begin(), prefix.begin(), prefix.end());
  }

  // Drop the virtual root at the front.
  if (!path.empty() && path.front() == NavGraph::kRootIndex) {
    path.erase(path.begin());
  }
  return path;
}

}  // namespace topo
