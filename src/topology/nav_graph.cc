#include "src/topology/nav_graph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <string_view>
#include <unordered_set>

namespace topo {

NavGraph::NavGraph() : index_once_(std::make_unique<std::once_flag>()) {
  NodeInfo root;
  root.control_id = "[Root]|Pane|";
  root.name = "[Root]";
  root.type = uia::ControlType::kPane;
  nodes_.push_back(root);
  adjacency_.emplace_back();
  index_by_id_[nodes_[0].control_id] = 0;
}

NavGraph::NavGraph(const NavGraph& other)
    : nodes_(other.nodes_),
      adjacency_(other.adjacency_),
      index_by_id_(other.index_by_id_),
      index_once_(std::make_unique<std::once_flag>()) {}

NavGraph& NavGraph::operator=(const NavGraph& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    adjacency_ = other.adjacency_;
    index_by_id_ = other.index_by_id_;
    index_once_ = std::make_unique<std::once_flag>();
  }
  return *this;
}

void NavGraph::EnsureIndex() const {
  std::call_once(*index_once_, [this] {
    if (!index_by_id_.empty()) {
      return;  // built eagerly (AddNode path) or copied from a built graph
    }
    index_by_id_.reserve(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      index_by_id_.emplace(nodes_[i].control_id, static_cast<int>(i));
    }
  });
}

int NavGraph::AddNode(const NodeInfo& info) {
  assert(!info.control_id.empty());
  EnsureIndex();
  auto it = index_by_id_.find(info.control_id);
  if (it != index_by_id_.end()) {
    return it->second;
  }
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(info);
  adjacency_.emplace_back();
  index_by_id_[info.control_id] = index;
  return index;
}

int NavGraph::FindNode(const std::string& control_id) const {
  EnsureIndex();
  auto it = index_by_id_.find(control_id);
  return it == index_by_id_.end() ? -1 : it->second;
}

void NavGraph::AddEdge(int from, int to) {
  assert(from >= 0 && from < static_cast<int>(nodes_.size()));
  assert(to >= 0 && to < static_cast<int>(nodes_.size()));
  if (from == to) {
    return;
  }
  auto& succ = adjacency_[static_cast<size_t>(from)];
  for (int existing : succ) {
    if (existing == to) {
      return;
    }
  }
  succ.push_back(to);
}

size_t NavGraph::edge_count() const {
  size_t n = 0;
  for (const auto& succ : adjacency_) {
    n += succ.size();
  }
  return n;
}

std::vector<int> NavGraph::InDegrees() const {
  std::vector<int> indeg(nodes_.size(), 0);
  for (const auto& succ : adjacency_) {
    for (int to : succ) {
      ++indeg[static_cast<size_t>(to)];
    }
  }
  return indeg;
}

std::vector<bool> NavGraph::Reachable() const {
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<int> queue = {kRootIndex};
  seen[kRootIndex] = true;
  while (!queue.empty()) {
    int n = queue.front();
    queue.pop_front();
    for (int to : adjacency_[static_cast<size_t>(n)]) {
      if (!seen[static_cast<size_t>(to)]) {
        seen[static_cast<size_t>(to)] = true;
        queue.push_back(to);
      }
    }
  }
  return seen;
}

GraphStats NavGraph::ComputeStats() const {
  GraphStats stats;
  stats.nodes = nodes_.size();
  stats.edges = edge_count();
  for (int d : InDegrees()) {
    if (d > 1) {
      ++stats.merge_nodes;
    }
  }
  // BFS depth from the root.
  std::vector<int> depth(nodes_.size(), -1);
  std::deque<int> queue = {kRootIndex};
  depth[kRootIndex] = 0;
  while (!queue.empty()) {
    int n = queue.front();
    queue.pop_front();
    stats.max_depth = std::max(stats.max_depth, depth[static_cast<size_t>(n)]);
    for (int to : adjacency_[static_cast<size_t>(n)]) {
      if (depth[static_cast<size_t>(to)] < 0) {
        depth[static_cast<size_t>(to)] = depth[static_cast<size_t>(n)] + 1;
        queue.push_back(to);
      }
    }
  }
  return stats;
}

void NavGraph::MergeFrom(const NavGraph& other) {
  std::vector<int> remap(other.nodes_.size());
  for (size_t i = 0; i < other.nodes_.size(); ++i) {
    remap[i] = AddNode(other.nodes_[i]);  // root dedups onto our root
  }
  for (size_t from = 0; from < other.adjacency_.size(); ++from) {
    for (int to : other.adjacency_[from]) {
      AddEdge(remap[from], remap[static_cast<size_t>(to)]);
    }
  }
}

NavGraph NavGraph::Canonicalized() const {
  std::vector<int> order;
  order.reserve(nodes_.size());
  for (size_t i = 1; i < nodes_.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return nodes_[static_cast<size_t>(a)].control_id < nodes_[static_cast<size_t>(b)].control_id;
  });

  NavGraph out;
  std::vector<int> remap(nodes_.size(), kRootIndex);
  for (int old_index : order) {
    remap[static_cast<size_t>(old_index)] = out.AddNode(nodes_[static_cast<size_t>(old_index)]);
  }
  for (size_t from = 0; from < adjacency_.size(); ++from) {
    for (int to : adjacency_[from]) {
      out.AddEdge(remap[from], remap[static_cast<size_t>(to)]);
    }
  }
  for (auto& succ : out.adjacency_) {
    std::sort(succ.begin(), succ.end());
  }
  return out;
}

support::Result<NavGraph> NavGraph::FromParts(std::vector<NodeInfo> nodes,
                                              std::vector<std::vector<int>> adjacency) {
  if (nodes.empty() || nodes.size() != adjacency.size()) {
    return support::InvalidArgumentError("graph parts misaligned: " +
                                         std::to_string(nodes.size()) + " nodes vs " +
                                         std::to_string(adjacency.size()) + " adjacency rows");
  }
  const int count = static_cast<int>(nodes.size());
  for (const auto& row : adjacency) {
    for (int to : row) {
      if (to < 0 || to >= count) {
        return support::InvalidArgumentError("graph edge target out of range: " +
                                             std::to_string(to));
      }
    }
  }
  // Uniqueness check without materializing the string-keyed index: the
  // eager map rebuild costs ~4x the whole rest of an artifact's DAG parse,
  // so it is deferred until the first lookup (EnsureIndex, call_once) —
  // most loaded graphs are only ever walked by index. 64-bit hashes go into a flat
  // open-addressed probe table; a hash ever seen twice (real duplicate or
  // collision) takes the exact slow path.
  size_t cap = 16;
  while (cap < nodes.size() * 2) {
    cap <<= 1;
  }
  std::vector<uint64_t> table(cap, 0);
  bool need_exact = false;
  for (int i = 0; i < count && !need_exact; ++i) {
    const std::string& id = nodes[static_cast<size_t>(i)].control_id;
    uint64_t h = std::hash<std::string_view>{}(id);
    h += (h == 0);  // 0 marks an empty slot
    for (size_t slot = h & (cap - 1);; slot = (slot + 1) & (cap - 1)) {
      if (table[slot] == 0) {
        table[slot] = h;
        break;
      }
      if (table[slot] == h) {
        need_exact = true;
        break;
      }
    }
  }
  if (need_exact) {
    std::unordered_set<std::string_view> seen;
    seen.reserve(nodes.size());
    for (int i = 0; i < count; ++i) {
      if (!seen.insert(nodes[static_cast<size_t>(i)].control_id).second) {
        return support::InvalidArgumentError("duplicate control id at node " +
                                             std::to_string(i));
      }
    }
  }
  for (int i = 0; i < count; ++i) {
    if (nodes[static_cast<size_t>(i)].control_id.empty()) {
      return support::InvalidArgumentError("empty control id at node " + std::to_string(i));
    }
  }
  NavGraph graph;
  graph.nodes_ = std::move(nodes);
  graph.adjacency_ = std::move(adjacency);
  graph.index_by_id_.clear();
  return graph;
}

jsonv::Value NavGraph::ToJson() const {
  jsonv::Array nodes;
  for (const auto& n : nodes_) {
    jsonv::Object obj;
    obj["id"] = n.control_id;
    obj["name"] = n.name;
    obj["type"] = std::string(uia::ControlTypeName(n.type));
    if (!n.description.empty()) {
      obj["desc"] = n.description;
    }
    if (!n.automation_id.empty()) {
      obj["aid"] = n.automation_id;
    }
    nodes.push_back(jsonv::Value(std::move(obj)));
  }
  jsonv::Array edges;
  for (size_t from = 0; from < adjacency_.size(); ++from) {
    for (int to : adjacency_[from]) {
      edges.push_back(jsonv::Value(jsonv::Array{jsonv::Value(static_cast<int64_t>(from)),
                                                jsonv::Value(static_cast<int64_t>(to))}));
    }
  }
  jsonv::Object doc;
  doc["nodes"] = jsonv::Value(std::move(nodes));
  doc["edges"] = jsonv::Value(std::move(edges));
  return jsonv::Value(std::move(doc));
}

support::Result<NavGraph> NavGraph::FromJson(const jsonv::Value& value) {
  const jsonv::Value* nodes = value.Find("nodes");
  const jsonv::Value* edges = value.Find("edges");
  if (nodes == nullptr || !nodes->is_array() || edges == nullptr || !edges->is_array()) {
    return support::InvalidArgumentError("UNG JSON must have 'nodes' and 'edges' arrays");
  }
  NavGraph graph;
  // Node 0 in the serialized form is the root; skip re-adding it.
  for (size_t i = 1; i < nodes->as_array().size(); ++i) {
    const jsonv::Value& n = nodes->as_array()[i];
    NodeInfo info;
    info.control_id = n.GetString("id");
    info.name = n.GetString("name");
    auto type = uia::ControlTypeFromName(n.GetString("type"));
    if (info.control_id.empty() || !type.has_value()) {
      return support::InvalidArgumentError("malformed UNG node at index " + std::to_string(i));
    }
    info.type = *type;
    info.description = n.GetString("desc");
    info.automation_id = n.GetString("aid");
    int index = graph.AddNode(info);
    if (index != static_cast<int>(i)) {
      return support::InvalidArgumentError("duplicate control id in UNG JSON: " +
                                           info.control_id);
    }
  }
  for (const jsonv::Value& e : edges->as_array()) {
    if (!e.is_array() || e.as_array().size() != 2) {
      return support::InvalidArgumentError("malformed UNG edge");
    }
    const int from = static_cast<int>(e.as_array()[0].as_int());
    const int to = static_cast<int>(e.as_array()[1].as_int());
    if (from < 0 || to < 0 || from >= static_cast<int>(graph.node_count()) ||
        to >= static_cast<int>(graph.node_count())) {
      return support::InvalidArgumentError("UNG edge index out of range");
    }
    graph.AddEdge(from, to);
  }
  return graph;
}

}  // namespace topo
