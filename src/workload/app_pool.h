// AppPool: a reset-based application pool for the suite harness (DESIGN.md
// §10).
//
// Constructing a synthetic Office-scale app allocates a >4,000-control tree;
// the paper's evaluation tears one down and rebuilds one for every RunOnce.
// The pool amortizes that: workers lease an instance per AppKind and, on
// return, the instance is factory-reset (Application::ResetToFreshState) —
// injector detached, document model reseeded, every control snapshot
// restored — instead of destroyed.
//
// Reset-equivalence contract: a pooled-and-reset instance must be
// behaviorally indistinguishable from a freshly constructed one. With
// `verify_reset` on (default in debug builds), every return recomputes the
// UIA-tree checksum and compares it against the instance's own
// fresh-at-construction checksum; a mismatch counts `app_pool.reset_mismatches`
// and the instance is discarded, never reused — pooling can fail slow, but it
// can never silently change semantics.
#ifndef SRC_WORKLOAD_APP_POOL_H_
#define SRC_WORKLOAD_APP_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/gui/application.h"
#include "src/support/retry.h"
#include "src/workload/tasks.h"

namespace workload {

class AppPool {
 public:
  struct Options {
    // Verify after every reset that the recycled instance checksums equal to
    // its freshly constructed self. Debug builds default on; release builds
    // default off (the checksum walks the full tree).
#ifndef NDEBUG
    bool verify_reset = true;
#else
    bool verify_reset = false;
#endif
    size_t max_idle_per_kind = 64;
    // Re-verify an idle instance's checksum at lease time (defense against
    // state mutated while shelved). On mismatch the instance is discarded and
    // acquisition retries the next idle one under `acquire_retry`; when the
    // attempt budget (or the shelf) runs out, a fresh instance is
    // constructed — acquisition degrades gracefully, it never fails.
    bool verify_acquire = false;
    support::RetryPolicy acquire_retry = support::RetryPolicy::FixedTicks(2);
  };

  // RAII lease: hands out a ready-to-use Application and returns it to the
  // pool (factory-reset) on destruction. An unpooled lease owns a throwaway
  // instance destroyed on release, so both paths share one interface.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        kind_ = other.kind_;
        fresh_checksum_ = other.fresh_checksum_;
        generation_ = other.generation_;
        app_ = std::move(other.app_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    gsim::Application* get() const { return app_.get(); }
    gsim::Application& operator*() const { return *app_; }
    gsim::Application* operator->() const { return app_.get(); }
    explicit operator bool() const { return app_ != nullptr; }

    // Resets and returns the instance now (idempotent).
    void Release();

   private:
    friend class AppPool;
    Lease(AppPool* pool, AppKind kind, std::unique_ptr<gsim::Application> app,
          uint64_t fresh_checksum, uint64_t generation)
        : pool_(pool),
          kind_(kind),
          fresh_checksum_(fresh_checksum),
          generation_(generation),
          app_(std::move(app)) {}

    AppPool* pool_ = nullptr;  // null for unpooled leases
    AppKind kind_ = AppKind::kWord;
    uint64_t fresh_checksum_ = 0;
    uint64_t generation_ = 0;  // pool generation the instance was built under
    std::unique_ptr<gsim::Application> app_;
  };

  AppPool() = default;
  explicit AppPool(Options options) : options_(options) {}

  // Leases an instance for `task`: reuses an idle pooled instance of the
  // task's AppKind, else constructs one via task.make_app(). `pooled = false`
  // constructs a throwaway instance (the unpooled baseline path).
  // Thread-safe; the expensive work (construction, reset, checksum) runs
  // outside the pool lock on the exclusively-owned instance.
  Lease Acquire(const Task& task, bool pooled = true);

  // Fills the task's shelf up to `count` idle instances (bounded by
  // max_idle_per_kind), so a fleet of concurrent workers starts from warm
  // reset-verified instances instead of racing through first-touch
  // construction. Construction runs outside the pool lock; thread-safe.
  void Prewarm(const Task& task, size_t count);

  size_t IdleCount(AppKind kind);

  using Factory = std::function<std::unique_ptr<gsim::Application>()>;

  // Live version swap support (DESIGN.md §15): makes every *future* lease of
  // `kind` construct through `factory` instead of Task::make_app, drops the
  // idle shelf (those instances are the old build), and bumps the kind's
  // generation so in-flight leases of the old build are destroyed on return
  // instead of re-shelved. Thread-safe; null restores Task::make_app (still
  // bumping the generation).
  void SetFactory(AppKind kind, Factory factory);

 private:
  struct Idle {
    std::unique_ptr<gsim::Application> app;
    uint64_t fresh_checksum = 0;
  };

  // Called by Lease::Release: factory-reset, verify, and re-shelve (or
  // discard on mismatch / overflow / stale generation).
  void Return(AppKind kind, std::unique_ptr<gsim::Application> app, uint64_t fresh_checksum,
              uint64_t generation);

  // Constructs one instance of `kind` under the current factory override (or
  // `task.make_app()`), returning it with the generation it was built under.
  std::pair<std::unique_ptr<gsim::Application>, uint64_t> Construct(const Task& task);

  Options options_;
  std::mutex mu_;
  std::map<AppKind, std::vector<Idle>> idle_;
  std::map<AppKind, Factory> factory_;      // per-kind override; absent = make_app
  std::map<AppKind, uint64_t> generation_;  // bumped by every SetFactory
};

}  // namespace workload

#endif  // SRC_WORKLOAD_APP_POOL_H_
