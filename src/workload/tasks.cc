#include "src/workload/tasks.h"

#include <cmath>
#include <cstdlib>

#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"

namespace workload {
namespace {

using apps::ExcelSim;
using apps::PpointSim;
using apps::WordSim;

// ----- plan-building helpers ---------------------------------------------------

VisitTarget T(std::vector<std::string> chain, std::string text = "",
              std::string shortcut = "") {
  VisitTarget t;
  t.name_chain = std::move(chain);
  t.input_text = std::move(text);
  t.shortcut_after = std::move(shortcut);
  return t;
}

// Enforced access for functional navigation nodes (§5.7).
VisitTarget TE(std::vector<std::string> chain) {
  VisitTarget t;
  t.name_chain = std::move(chain);
  t.enforced = true;
  return t;
}

DmiStep Visit(std::vector<VisitTarget> targets) {
  DmiStep s;
  s.kind = DmiStep::Kind::kVisitBatch;
  s.targets = std::move(targets);
  return s;
}

DmiStep Scroll(std::string surface, double vertical) {
  DmiStep s;
  s.kind = DmiStep::Kind::kSetScrollbar;
  s.surface_name = std::move(surface);
  s.scroll_vertical = vertical;
  return s;
}

DmiStep SelectParas(std::string surface, int start, int end) {
  DmiStep s;
  s.kind = DmiStep::Kind::kSelectParagraphs;
  s.surface_name = std::move(surface);
  s.range_start = start;
  s.range_end = end;
  return s;
}

DmiStep SelectCellRange(int row0, int row1, int col0, int col1) {
  DmiStep s;
  s.kind = DmiStep::Kind::kSelectCells;
  s.range_start = row0;
  s.range_end = row1;
  s.cell_col_start = col0;
  s.cell_col_end = col1;
  return s;
}

GuiAction Click(std::string target, bool functional = false) {
  GuiAction a;
  a.kind = GuiAction::Kind::kClick;
  a.target = std::move(target);
  a.functional = functional;
  return a;
}

GuiAction Type(std::string text) {
  GuiAction a;
  a.kind = GuiAction::Kind::kType;
  a.text = std::move(text);
  a.functional = true;
  return a;
}

GuiAction Key(std::string chord, bool functional = true) {
  GuiAction a;
  a.kind = GuiAction::Kind::kKey;
  a.text = std::move(chord);
  a.functional = functional;
  return a;
}

GuiAction DragScroll(std::string surface, double target) {
  GuiAction a;
  a.kind = GuiAction::Kind::kDragScroll;
  a.target = std::move(surface);
  a.scroll_target = target;
  return a;
}

GuiAction SelectText(int start, int end) {
  GuiAction a;
  a.kind = GuiAction::Kind::kSelectText;
  a.range_start = start;
  a.range_end = end;
  return a;
}

GuiAction SelectCells(int row0, int row1, int col0, int col1) {
  GuiAction a;
  a.kind = GuiAction::Kind::kSelectCells;
  a.range_start = row0;
  a.range_end = row1;
  a.col_start = col0;
  a.col_end = col1;
  return a;
}

template <typename App>
std::function<std::unique_ptr<gsim::Application>()> Factory() {
  return [] { return std::make_unique<App>(); };
}

// ----- Word tasks ----------------------------------------------------------------

std::vector<Task> WordTasks() {
  std::vector<Task> tasks;

  {
    Task t;
    t.id = "W1";
    t.app = AppKind::kWord;
    t.description = "Make paragraphs 3 to 5 bold.";
    t.dmi_plan = {SelectParas("Document", 2, 4), Visit({T({"Font", "Bold"})})};
    t.gui_plan = {SelectText(2, 4), Click("Bold", true)};
    t.verify = [](gsim::Application& a) {
      auto& w = static_cast<WordSim&>(a);
      for (int i = 2; i <= 4; ++i) {
        if (!w.paragraphs()[static_cast<size_t>(i)].fmt.bold) {
          return false;
        }
      }
      return !w.paragraphs()[1].fmt.bold && !w.paragraphs()[5].fmt.bold;
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W2";
    t.app = AppKind::kWord;
    t.description = "Set the font color of paragraphs 1 to 3 to Blue.";
    t.dmi_plan = {SelectParas("Document", 0, 2), Visit({T({"Font Color", "Blue"})})};
    t.gui_plan = {SelectText(0, 2), Click("Font Color"), Click("Blue", true)};
    t.verify = [](gsim::Application& a) {
      auto& w = static_cast<WordSim&>(a);
      for (int i = 0; i <= 2; ++i) {
        if (w.paragraphs()[static_cast<size_t>(i)].fmt.color != "Blue") {
          return false;
        }
      }
      return w.paragraphs()[3].fmt.color == "Black";
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W3";
    t.app = AppKind::kWord;
    t.description = "Replace every occurrence of 'committee' with 'board'.";
    t.ambiguous = true;  // match-case? whole words? the spec doesn't say
    t.dmi_plan = {Visit({T({"Find and Replace", "Find what"}, "committee"),
                         T({"Find and Replace", "Replace with"}, "board"),
                         T({"Find and Replace", "Replace All"})})};
    t.gui_plan = {Click("Replace"), Click("Find what"), Type("committee"),
                  Click("Replace with"), Type("board"), Click("Replace All", true)};
    t.verify = [](gsim::Application& a) {
      auto& w = static_cast<WordSim&>(a);
      bool any_board = false;
      for (const auto& p : w.paragraphs()) {
        if (p.text.find("committee") != std::string::npos) {
          return false;
        }
        any_board |= p.text.find("board") != std::string::npos;
      }
      return any_board;
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W4";
    t.app = AppKind::kWord;
    t.description = "Insert a table with 3 rows and 4 columns.";
    t.dmi_plan = {Visit({T({"Table", "Table 3 x 4"})})};
    t.gui_plan = {Click("Insert"), Click("Table"), Click("Table 3 x 4", true)};
    t.verify = [](gsim::Application& a) {
      auto& w = static_cast<WordSim&>(a);
      return w.table_rows() == 3 && w.table_cols() == 4;
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W5";
    t.app = AppKind::kWord;
    t.description = "Change the page orientation to Landscape.";
    t.dmi_plan = {Visit({T({"Orientation", "Landscape"})})};
    t.gui_plan = {Click("Layout"), Click("Orientation"), Click("Landscape", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<WordSim&>(a).page_orientation() == "Landscape";
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W6";
    t.app = AppKind::kWord;
    t.description = "Apply the Heading 1 style to the first paragraph.";
    t.dmi_plan = {SelectParas("Document", 0, 0),
                  Visit({T({"Styles Gallery", "Heading 1"})})};
    t.gui_plan = {SelectText(0, 0), Click("Styles Gallery"), Click("Heading 1", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<WordSim&>(a).paragraphs()[0].style == "Heading 1";
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W7";
    t.app = AppKind::kWord;
    t.description = "Set the page color to Gold.";
    t.subtle_semantics = true;  // page color vs font color vs highlight
    t.dmi_plan = {Visit({T({"Page Color", "Gold"})})};
    t.gui_plan = {Click("Design"), Click("Page Color"), Click("Gold", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<WordSim&>(a).page_color() == "Gold";
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W8";
    t.app = AppKind::kWord;
    t.description = "Show the area close to the end of the document (about 80%).";
    t.visual_heavy = true;
    t.dmi_plan = {Scroll("Document", 80.0)};
    t.gui_plan = {DragScroll("Document", 80.0)};
    t.verify = [](gsim::Application& a) {
      double p = static_cast<WordSim&>(a).scroll_percent();
      return p >= 70.0 && p <= 95.0;
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "W9";
    t.app = AppKind::kWord;
    t.description = "Underline paragraph 2 with a Standard Red underline color.";
    t.subtle_semantics = true;  // underline color vs font color (same palette)
    t.dmi_plan = {SelectParas("Document", 1, 1),
                  Visit({T({"Underline Color", "Standard Red"})})};
    t.gui_plan = {SelectText(1, 1), Click("Underline"), Click("Underline Color"),
                  Click("Standard Red", true)};
    t.verify = [](gsim::Application& a) {
      auto& w = static_cast<WordSim&>(a);
      return w.paragraphs()[1].fmt.underline &&
             w.paragraphs()[1].fmt.underline_color == "Standard Red" &&
             w.paragraphs()[1].fmt.color == "Black";
    };
    t.make_app = Factory<WordSim>();
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// ----- Excel tasks ---------------------------------------------------------------

std::vector<Task> ExcelTasks() {
  std::vector<Task> tasks;

  {
    Task t;
    t.id = "E1";
    t.app = AppKind::kExcel;
    t.description = "Go to cell C7 using the Name Box and enter the value 42.";
    t.subtle_semantics = true;  // the Name Box commits only on ENTER
    t.dmi_plan = {Visit({T({"Name Box"}, "C7", "ENTER"),
                         T({"Formula Bar"}, "42", "ENTER")})};
    t.gui_plan = {Click("Name Box"), Type("C7"), Key("ENTER", false),
                  Click("Formula Bar"), Type("42"), Key("ENTER")};
    t.verify = [](gsim::Application& a) {
      const apps::ExcelCell* c = static_cast<ExcelSim&>(a).find_cell(6, 2);
      return c != nullptr && c->value == "42";
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E2";
    t.app = AppKind::kExcel;
    t.description = "Set B14 to the sum of B2:B13.";
    t.dmi_plan = {Visit({T({"B14"}), T({"Formula Bar"}, "=SUM(B2:B13)", "ENTER")})};
    t.gui_plan = {Click("B14"), Click("Formula Bar"), Type("=SUM(B2:B13)"), Key("ENTER")};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      const apps::ExcelCell* c = e.find_cell(13, 1);
      if (c == nullptr || c->formula != "=SUM(B2:B13)") {
        return false;
      }
      double sum = 0;
      for (int r = 1; r <= 12; ++r) {
        const apps::ExcelCell* v = e.find_cell(r, 1);
        if (v != nullptr) {
          sum += std::atof(v->value.c_str());
        }
      }
      return std::abs(std::atof(c->value.c_str()) - sum) < 1e-9;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E3";
    t.app = AppKind::kExcel;
    t.description =
        "Highlight cells in B2:C13 with values greater than 100 using conditional "
        "formatting.";
    t.ambiguous = true;  // the rule applies to blanks in the region too
    t.dmi_plan = {
        SelectCellRange(1, 12, 1, 2),
        Visit({T({"Greater Than", "Format cells that are Greater Than"}, "100"),
               T({"Greater Than", "OK"})})};
    t.gui_plan = {SelectCells(1, 12, 1, 2), Click("Conditional Formatting"),
                  Click("Highlight Cells Rules"), Click("Greater Than..."),
                  Click("Format cells that are Greater Than"), Type("100"),
                  Click("OK", true)};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      for (const apps::CfRule& r : e.cf_rules()) {
        if (r.kind == "GreaterThan" && r.threshold == 100.0 && r.row0 == 1 &&
            r.row1 == 12 && r.col0 == 1 && r.col1 == 2) {
          return true;
        }
      }
      return false;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E4";
    t.app = AppKind::kExcel;
    t.description = "Sort the data rows ascending by the Q1 column.";
    t.dmi_plan = {Visit({T({"B2"}), T({"Sort and Filter", "Sort A to Z"})})};
    t.gui_plan = {Click("B2"), Click("Sort and Filter"), Click("Sort A to Z", true)};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      if (!e.sorted_ascending()) {
        return false;
      }
      double prev = -1e18;
      for (int r = 1; r <= 12; ++r) {
        const apps::ExcelCell* c = e.find_cell(r, 1);
        double v = c == nullptr ? 0 : std::atof(c->value.c_str());
        if (v < prev) {
          return false;
        }
        prev = v;
      }
      return true;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E5";
    t.app = AppKind::kExcel;
    t.description = "Make the header row A1:D1 bold with a Gold fill color.";
    t.dmi_plan = {SelectCellRange(0, 0, 0, 3),
                  Visit({T({"Font", "Bold"}), T({"Fill Color", "Gold"})})};
    t.gui_plan = {SelectCells(0, 0, 0, 3), Click("Bold", true), Click("Fill Color"),
                  Click("Gold", true)};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      for (int c = 0; c <= 3; ++c) {
        const apps::ExcelCell* cell = e.find_cell(0, c);
        if (cell == nullptr || !cell->bold || cell->fill_color != "Gold") {
          return false;
        }
      }
      return true;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E6";
    t.app = AppKind::kExcel;
    t.description = "Format C2:C13 as Percentage.";
    t.dmi_plan = {SelectCellRange(1, 12, 2, 2),
                  Visit({T({"Number Format", "Percentage"})})};
    t.gui_plan = {SelectCells(1, 12, 2, 2), Click("Number Format"),
                  Click("Percentage", true)};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      for (int r = 1; r <= 12; ++r) {
        const apps::ExcelCell* c = e.find_cell(r, 2);
        if (c == nullptr || c->number_format != "Percentage") {
          return false;
        }
      }
      return true;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E7";
    t.app = AppKind::kExcel;
    t.description = "Scroll down to row 121 and select cell A121.";
    t.visual_heavy = true;
    t.dmi_plan = {Scroll("Sheet Grid", 82.0), SelectCellRange(120, 120, 0, 0)};
    t.gui_plan = {DragScroll("Sheet Grid", 82.0), Click("A121", true)};
    t.verify = [](gsim::Application& a) {
      auto& e = static_cast<ExcelSim&>(a);
      return e.active_row() == 120 && e.active_col() == 0;
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E8";
    t.app = AppKind::kExcel;
    t.description = "Turn on the data filter.";
    t.dmi_plan = {Visit({T({"Sort and Filter", "Filter"})})};
    t.gui_plan = {Click("Sort and Filter"), Click("Filter", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<ExcelSim&>(a).filter_enabled();
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "E9";
    t.app = AppKind::kExcel;
    t.description = "Insert a pie chart (subtype 3).";
    t.dmi_plan = {Visit({T({"Pie Chart", "Pie Chart Subtype 3"})})};
    t.gui_plan = {Click("Insert"), Click("Pie Chart"), Click("Pie Chart Subtype 3", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<ExcelSim&>(a).HasEffect("chart.insert:Pie Chart Subtype 3");
    };
    t.make_app = Factory<ExcelSim>();
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// ----- PowerPoint tasks -------------------------------------------------------------

std::vector<Task> PpointTasks() {
  std::vector<Task> tasks;

  {
    Task t;
    t.id = "P1";
    t.app = AppKind::kPpoint;
    t.description = "Make the background blue on all slides.";
    t.dmi_plan = {Visit({T({"Format Background Pane", "Solid fill"}),
                         T({"Fill Color", "Blue"}),
                         T({"Format Background Pane", "Apply to All"})})};
    t.gui_plan = {Click("Design"), Click("Format Background"), Click("Solid fill", true),
                  Click("Fill Color"), Click("Blue", true), Click("Apply to All", true)};
    t.verify = [](gsim::Application& a) {
      for (const auto& s : static_cast<PpointSim&>(a).slides()) {
        if (s.background_color != "Blue" || !s.background_solid) {
          return false;
        }
      }
      return true;
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P2";
    t.app = AppKind::kPpoint;
    t.description = "Show the area close to the end of the slide view (about 80%).";
    t.visual_heavy = true;
    t.dmi_plan = {Scroll("Slide View", 80.0)};
    t.gui_plan = {DragScroll("Slide View", 80.0)};
    t.verify = [](gsim::Application& a) {
      double p = static_cast<PpointSim&>(a).view_scroll_percent();
      return p >= 70.0 && p <= 95.0;
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P3";
    t.app = AppKind::kPpoint;
    t.description = "Apply Theme 12 to the presentation.";
    t.dmi_plan = {Visit({T({"Themes Gallery", "Theme 12"})})};
    t.gui_plan = {Click("Design"), Click("Themes Gallery"), Click("Theme 12", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<PpointSim&>(a).theme() == "Theme 12";
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P4";
    t.app = AppKind::kPpoint;
    t.description = "Apply Transition 7 to all slides.";
    t.dmi_plan = {Visit({T({"Transition Gallery", "Transition 7"}),
                         T({"Timing", "Apply To All Slides"})})};
    t.gui_plan = {Click("Transitions"), Click("Transition Gallery"),
                  Click("Transition 7", true), Click("Apply To All Slides", true)};
    t.verify = [](gsim::Application& a) {
      for (const auto& s : static_cast<PpointSim&>(a).slides()) {
        if (s.transition != "Transition 7") {
          return false;
        }
      }
      return true;
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P5";
    t.app = AppKind::kPpoint;
    t.description = "Go to slide 5 and apply Layout Preset 4.";
    t.dmi_plan = {Visit({TE({"Slide Thumbnails", "Slide 5"}),
                         T({"Layout", "Layout Preset 4"})})};
    t.gui_plan = {Click("Slide 5"), Click("Layout"), Click("Layout Preset 4", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<PpointSim&>(a).slides()[4].layout == "Layout Preset 4";
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P6";
    t.app = AppKind::kPpoint;
    t.description = "Insert Shape 10 on the current slide.";
    t.dmi_plan = {Visit({T({"Shapes", "Shape 10"})})};
    t.gui_plan = {Click("Shapes"), Click("Shape 10", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<PpointSim&>(a).HasEffect("shape.insert:Shape 10");
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P7";
    t.app = AppKind::kPpoint;
    t.description = "Apply Correction Preset 3 to the picture on slide 3.";
    t.visual_heavy = true;  // requires finding the picture among shapes
    t.dmi_plan = {
        Visit({TE({"Slide Thumbnails", "Slide 3"}),
               TE({"Slide 3 Canvas", "Image: Quarterly chart screenshot"}),
               T({"Corrections", "Correction Preset 3"})})};
    t.gui_plan = {Click("Slide 3"), Click("Image: Quarterly chart screenshot"),
                  Click("Picture Format"), Click("Corrections"),
                  Click("Correction Preset 3", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<PpointSim&>(a).HasEffect("pic.correction:Correction Preset 3");
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P8";
    t.app = AppKind::kPpoint;
    t.description = "Set the font color of the title on slide 1 to Gold.";
    t.dmi_plan = {Visit({T({"Slide 1 Canvas", "Title: Slide 1 Title"}),
                         T({"Font Color", "Gold"})})};
    t.gui_plan = {Click("Title: Slide 1 Title"), Click("Font Color"),
                  Click("Gold", true)};
    t.verify = [](gsim::Application& a) {
      return static_cast<PpointSim&>(a).slides()[0].shapes[0].font_color == "Gold";
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  {
    Task t;
    t.id = "P9";
    t.app = AppKind::kPpoint;
    t.description = "Enable the second option in the Header and Footer dialog.";
    t.ambiguous = true;  // which of the six options is "the second"?
    t.dmi_plan = {Visit({T({"Header and Footer", "Header and Footer Option 2"}),
                         T({"Header and Footer", "OK"})})};
    t.gui_plan = {Click("Insert"), Click("Header and Footer"),
                  Click("Header and Footer Option 2", true), Click("OK", true)};
    t.verify = [](gsim::Application& a) {
      auto& p = static_cast<PpointSim&>(a);
      gsim::Window* dialog = p.FindDialog("header_footer_dialog");
      if (dialog == nullptr) {
        return false;
      }
      bool on = false;
      dialog->root().WalkStatic([&](gsim::Control& c) {
        if (c.TrueName() == "Header and Footer Option 2" && c.toggled()) {
          on = true;
        }
      });
      return on && p.HasEffect("slide.header_footer:OK");
    };
    t.make_app = Factory<PpointSim>();
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace

const char* AppKindName(AppKind kind) {
  switch (kind) {
    case AppKind::kWord:
      return "WordSim";
    case AppKind::kExcel:
      return "ExcelSim";
    case AppKind::kPpoint:
      return "PpointSim";
  }
  return "?";
}

std::vector<Task> BuildOsworldWSuite() {
  std::vector<Task> suite = WordTasks();
  for (auto& t : ExcelTasks()) {
    suite.push_back(std::move(t));
  }
  for (auto& t : PpointTasks()) {
    suite.push_back(std::move(t));
  }
  return suite;
}

std::vector<Task> TasksForApp(const std::vector<Task>& suite, AppKind app) {
  std::vector<Task> out;
  for (const Task& t : suite) {
    if (t.app == app) {
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace workload
