// The OSWorld-W-like task suite (paper §5.1).
//
// 27 single-app tasks — 9 each for WordSim, ExcelSim, PpointSim — mirroring
// the benchmark's categories: formatting, navigation, data entry, selection,
// dialog-driven edits, composite interactions, ambiguous specifications.
// Each task carries:
//   - a ground-truth *DMI plan*: the declarative steps (visit batches with
//     name-chain targets, state declarations, observations);
//   - a ground-truth *GUI plan*: the full imperative action chain (every
//     navigation click spelled out, composite drags, typed text);
//   - a state verifier over the live application.
// The simulated LLM perturbs these plans according to its capability profile;
// the plans themselves encode what a perfect policy would do through each
// interface, which is exactly what the paper holds constant.
#ifndef SRC_WORKLOAD_TASKS_H_
#define SRC_WORKLOAD_TASKS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/gui/application.h"

namespace workload {

enum class AppKind { kWord, kExcel, kPpoint };

const char* AppKindName(AppKind kind);

// ----- DMI plan -----------------------------------------------------------------

// One target inside a visit batch, addressed by a human-readable name chain
// (resolved to forest ids at runtime via DmiSession::ResolveTargetByNames).
struct VisitTarget {
  std::vector<std::string> name_chain;
  std::string input_text;      // non-empty -> access-and-input
  std::string shortcut_after;  // non-empty -> shortcut command follows
  // Navigation-node targets that are genuinely functional (slide thumbnails,
  // shape selection) declare enforced access (§5.7).
  bool enforced = false;
};

struct DmiStep {
  enum class Kind {
    kVisitBatch,       // one visit() call with >=1 targets
    kSetScrollbar,     // set_scrollbar_pos on a named surface
    kSelectParagraphs, // select_paragraphs on a named surface
    kSelectCells,      // select_controls over a cell range (Excel)
    kObserve,          // get_texts (active) on a named control
    kGuiFallback,      // outside DMI coverage: run the matching GUI actions
  };
  Kind kind = Kind::kVisitBatch;
  std::vector<VisitTarget> targets;   // kVisitBatch
  std::string surface_name;           // control name for state/observe steps
  double scroll_vertical = -1.0;      // kSetScrollbar
  int range_start = 0;                // selections (paragraphs or cell rows)
  int range_end = 0;
  int cell_col_start = 0;             // kSelectCells
  int cell_col_end = 0;
  int gui_fallback_begin = -1;        // kGuiFallback: range into the GUI plan
  int gui_fallback_end = -1;
};

// ----- GUI plan -----------------------------------------------------------------

struct GuiAction {
  enum class Kind {
    kClick,        // click a named control (must be currently visible)
    kType,         // type into the focused edit
    kKey,          // key chord
    kDragScroll,   // one drag-observe iteration toward scroll_target
    kSelectText,   // visually select a paragraph range (composite)
    kSelectCells,  // click + ctrl-click cells (composite)
  };
  Kind kind = Kind::kClick;
  std::string target;         // control name (kClick / surfaces)
  std::string text;           // kType / kKey
  double scroll_target = -1;  // kDragScroll: desired vertical percent
  int range_start = 0;        // kSelectText / kSelectCells
  int range_end = 0;
  int col_start = 0;
  int col_end = 0;
  // Functional actions mutate the document; navigation actions only steer
  // the UI. Recovery replays navigation but never repeats functional ones.
  bool functional = false;
};

// ----- task ---------------------------------------------------------------------

struct Task {
  std::string id;            // "W3", "E7", "P1", ...
  AppKind app = AppKind::kWord;
  std::string description;   // the natural-language instruction

  // Failure-mode flags (drive policy-level error sampling, Figure 6).
  bool ambiguous = false;        // under-specified instruction
  bool subtle_semantics = false; // easy-to-misread control semantics
  bool visual_heavy = false;     // needs reading on-screen content

  std::vector<DmiStep> dmi_plan;
  std::vector<GuiAction> gui_plan;

  std::function<bool(gsim::Application&)> verify;

  // Fresh application instance for one run of this task.
  std::function<std::unique_ptr<gsim::Application>()> make_app;
};

// The full 27-task suite.
std::vector<Task> BuildOsworldWSuite();

// Subset helpers.
std::vector<Task> TasksForApp(const std::vector<Task>& suite, AppKind app);

}  // namespace workload

#endif  // SRC_WORKLOAD_TASKS_H_
