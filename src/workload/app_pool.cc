#include "src/workload/app_pool.h"

#include <algorithm>
#include <utility>

#include "src/support/logging.h"
#include "src/support/metrics.h"

namespace workload {

void AppPool::Lease::Release() {
  if (app_ == nullptr) {
    return;
  }
  if (pool_ == nullptr) {
    app_.reset();  // unpooled throwaway instance
    return;
  }
  AppPool* pool = pool_;
  pool_ = nullptr;
  pool->Return(kind_, std::move(app_), fresh_checksum_, generation_);
}

std::pair<std::unique_ptr<gsim::Application>, uint64_t> AppPool::Construct(const Task& task) {
  Factory factory;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = factory_.find(task.app); it != factory_.end()) {
      factory = it->second;
    }
    if (auto it = generation_.find(task.app); it != generation_.end()) {
      generation = it->second;
    }
  }
  // Construction runs outside the lock; the factory copy keeps a swap racing
  // in parallel from invalidating the callable mid-call (the stale-generation
  // check on return cleans up whichever build loses the race).
  return {factory ? factory() : task.make_app(), generation};
}

void AppPool::SetFactory(AppKind kind, Factory factory) {
  std::vector<Idle> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (factory) {
      factory_[kind] = std::move(factory);
    } else {
      factory_.erase(kind);
    }
    ++generation_[kind];
    dropped.swap(idle_[kind]);  // old-build instances; destroy outside the lock
  }
  if (!dropped.empty()) {
    support::CountMetric("app_pool.swap_discards", dropped.size());
    support::CountMetric("app_pool.swap_discards", {{"app", AppKindName(kind)}},
                         dropped.size());
  }
}

AppPool::Lease AppPool::Acquire(const Task& task, bool pooled) {
  const support::MetricLabels labels{{"app", AppKindName(task.app)}};
  support::CountMetric("app_pool.leases");
  support::CountMetric("app_pool.leases", labels);
  if (!pooled) {
    support::CountMetric("app_pool.creates");
    support::CountMetric("app_pool.creates", labels);
    auto [app, generation] = Construct(task);
    return Lease(nullptr, task.app, std::move(app), 0, generation);
  }
  int attempt = 0;
  while (true) {
    Idle entry;
    uint64_t generation = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::vector<Idle>& shelf = idle_[task.app];
      if (shelf.empty()) {
        break;
      }
      entry = std::move(shelf.back());
      shelf.pop_back();
      // The shelf holds only current-generation instances (SetFactory clears
      // it and Return drops stale ones), so the lease is tagged here, under
      // the same lock.
      if (auto it = generation_.find(task.app); it != generation_.end()) {
        generation = it->second;
      }
    }
    ++attempt;
    // Checksum runs outside the lock on the exclusively-owned instance.
    if (!options_.verify_acquire || entry.fresh_checksum == 0 ||
        entry.app->UiaStateChecksum() == entry.fresh_checksum) {
      support::CountMetric("app_pool.reuses");
      support::CountMetric("app_pool.reuses", labels);
      return Lease(this, task.app, std::move(entry.app), entry.fresh_checksum, generation);
    }
    support::CountMetric("app_pool.acquire_discards");
    support::CountMetric("app_pool.acquire_discards", labels);
    DMI_LOG(kError) << "app_pool: shelved '" << entry.app->name()
                    << "' no longer matches its fresh checksum; discarding";
    if (!options_.acquire_retry.ShouldRetry(attempt)) {
      break;  // attempt budget spent: fall through to fresh construction
    }
    support::CountMetric("app_pool.acquire_retries");
    support::CountMetric("app_pool.acquire_retries", labels);
  }
  support::CountMetric("app_pool.creates");
  support::CountMetric("app_pool.creates", labels);
  auto [app, generation] = Construct(task);
  app->CaptureFreshState();
  // The reference checksum is taken before any run touches the instance (and
  // before any injector attaches), so it describes the pristine state that
  // every later reset must reproduce.
  const uint64_t fresh_checksum = options_.verify_reset ? app->UiaStateChecksum() : 0;
  return Lease(this, task.app, std::move(app), fresh_checksum, generation);
}

void AppPool::Return(AppKind kind, std::unique_ptr<gsim::Application> app,
                     uint64_t fresh_checksum, uint64_t generation) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = generation_.find(kind);
    if (it != generation_.end() && it->second != generation) {
      // The kind was version-swapped while this lease was out: the instance
      // is the old build and must never serve a new-model run.
      support::CountMetric("app_pool.stale_discards");
      support::CountMetric("app_pool.stale_discards", {{"app", AppKindName(kind)}});
      return;  // destroyed, never re-shelved
    }
  }
  app->ResetToFreshState();
  const support::MetricLabels labels{{"app", AppKindName(kind)}};
  support::CountMetric("app_pool.resets");
  support::CountMetric("app_pool.resets", labels);
  if (options_.verify_reset) {
    const uint64_t reset_checksum = app->UiaStateChecksum();
    if (reset_checksum != fresh_checksum) {
      support::CountMetric("app_pool.reset_mismatches");
      support::CountMetric("app_pool.reset_mismatches", labels);
      DMI_LOG(kError) << "app_pool: reset of '" << app->name()
                      << "' diverged from its fresh state (checksum "
                      << reset_checksum << " != " << fresh_checksum
                      << "); discarding the instance";
      return;  // the instance is destroyed, never reused
    }
    support::CountMetric("app_pool.resets_verified");
    support::CountMetric("app_pool.resets_verified", labels);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the shelf lock: a swap may have landed while the reset
  // ran, and a stale instance must not slip onto the freshly cleared shelf.
  const auto it = generation_.find(kind);
  if (it != generation_.end() && it->second != generation) {
    support::CountMetric("app_pool.stale_discards");
    support::CountMetric("app_pool.stale_discards", {{"app", AppKindName(kind)}});
    return;
  }
  std::vector<Idle>& shelf = idle_[kind];
  if (shelf.size() >= options_.max_idle_per_kind) {
    return;  // shelf full; drop the instance
  }
  shelf.push_back(Idle{std::move(app), fresh_checksum});
}

void AppPool::Prewarm(const Task& task, size_t count) {
  const size_t target = std::min(count, options_.max_idle_per_kind);
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (idle_[task.app].size() >= target) {
        return;
      }
    }
    auto [app, generation] = Construct(task);
    app->CaptureFreshState();
    const uint64_t fresh_checksum =
        options_.verify_reset ? app->UiaStateChecksum() : 0;
    support::CountMetric("app_pool.prewarms");
    support::CountMetric("app_pool.prewarms", {{"app", AppKindName(task.app)}});
    std::lock_guard<std::mutex> lock(mu_);
    const auto gen_it = generation_.find(task.app);
    if (gen_it != generation_.end() && gen_it->second != generation) {
      return;  // swapped while constructing; the instance is already stale
    }
    std::vector<Idle>& shelf = idle_[task.app];
    if (shelf.size() >= std::min(target, options_.max_idle_per_kind)) {
      return;  // another thread filled the shelf meanwhile
    }
    shelf.push_back(Idle{std::move(app), fresh_checksum});
  }
}

size_t AppPool::IdleCount(AppKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = idle_.find(kind);
  return it == idle_.end() ? 0 : it->second.size();
}

}  // namespace workload
