// Context-efficient textual descriptions of controls and navigation
// (paper §3.3, §4.2).
//
// Output schema per node:
//     name(type)(description)_id[children]
// Parenthesized fields are optional; square brackets nest children; the id is
// the forest's consecutive integer (compact references for the LLM). The
// name/type/description come from the application's accessibility metadata.
// Reference nodes serialize as  @ref->Sk_id  and the forest header carries the
// shared-subtree entry map connecting references to subtree roots.
#ifndef SRC_DESCRIBE_SERIALIZE_H_
#define SRC_DESCRIBE_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace desc {

// Dense bitset over forest ids (consecutive from 1, keyed by
// Forest::max_id()). Replaces the std::set<int> keep-sets on the serializer
// hot path: membership is one shift+mask instead of a red-black-tree descent.
class IdSet {
 public:
  IdSet() = default;
  explicit IdSet(int max_id)
      : words_((max_id < 0 ? 0 : static_cast<size_t>(max_id) / 64 + 1), 0) {}

  void insert(int id) {
    if (id < 0) {
      return;
    }
    const size_t word = static_cast<size_t>(id) / 64;
    if (word >= words_.size()) {
      words_.resize(word + 1, 0);
    }
    words_[word] |= uint64_t{1} << (static_cast<size_t>(id) % 64);
  }

  bool contains(int id) const {
    if (id < 0) {
      return false;
    }
    const size_t word = static_cast<size_t>(id) / 64;
    return word < words_.size() &&
           (words_[word] >> (static_cast<size_t>(id) % 64) & 1) != 0;
  }

  size_t size() const {
    size_t total = 0;
    for (uint64_t w : words_) {
      total += static_cast<size_t>(__builtin_popcountll(w));
    }
    return total;
  }

 private:
  std::vector<uint64_t> words_;
};

struct DescribeOptions {
  // Max tokens of a single control's description before truncation (§4.2
  // "Truncating descriptions").
  size_t max_description_tokens = 14;
  // Attach descriptions at all (disable for minimal serializations).
  bool include_descriptions = true;
};

// Serializes one tree of the forest. `keep` (optional) restricts output to
// the given forest ids (the pruned core); elided sibling groups render as a
// "+N more" marker. `tree` is -1 for the main tree, else a shared index.
std::string SerializeTree(const topo::NavGraph& dag, const topo::Forest& forest, int tree,
                          const DescribeOptions& options, const IdSet* keep = nullptr);

// Serializes the whole forest: the main tree, each shared subtree, and the
// entry map (reference id -> subtree root id).
std::string SerializeForest(const topo::NavGraph& dag, const topo::Forest& forest,
                            const DescribeOptions& options, const IdSet* keep = nullptr);

// The entry-map section ("## Entry map (ref_id->subtree:root_id)\n..."), or
// "" when no entry survives `keep`. Entries are suppressed both when the
// reference node itself is pruned and when the target subtree's section was
// skipped (its root pruned) — a kept reference must never point at text that
// was not serialized. Walks the forest's precomputed reverse-reference index
// instead of rescanning every tree.
std::string SerializeEntryMap(const topo::Forest& forest, const IdSet* keep = nullptr);

// Whether the serializer would attach this node's description (key control
// types and navigation non-leaves get them; §4.2).
bool WantsDescription(const topo::NavGraph& dag, const topo::Forest& forest,
                      const topo::TreeNode& node);

}  // namespace desc

#endif  // SRC_DESCRIBE_SERIALIZE_H_
