// Context-efficient textual descriptions of controls and navigation
// (paper §3.3, §4.2).
//
// Output schema per node:
//     name(type)(description)_id[children]
// Parenthesized fields are optional; square brackets nest children; the id is
// the forest's consecutive integer (compact references for the LLM). The
// name/type/description come from the application's accessibility metadata.
// Reference nodes serialize as  @ref->Sk_id  and the forest header carries the
// shared-subtree entry map connecting references to subtree roots.
#ifndef SRC_DESCRIBE_SERIALIZE_H_
#define SRC_DESCRIBE_SERIALIZE_H_

#include <set>
#include <string>

#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace desc {

struct DescribeOptions {
  // Max tokens of a single control's description before truncation (§4.2
  // "Truncating descriptions").
  size_t max_description_tokens = 14;
  // Attach descriptions at all (disable for minimal serializations).
  bool include_descriptions = true;
};

// Serializes one tree of the forest. `keep` (optional) restricts output to
// the given forest ids (the pruned core); elided sibling groups render as a
// "+N more" marker. `tree` is -1 for the main tree, else a shared index.
std::string SerializeTree(const topo::NavGraph& dag, const topo::Forest& forest, int tree,
                          const DescribeOptions& options,
                          const std::set<int>* keep = nullptr);

// Serializes the whole forest: the main tree, each shared subtree, and the
// entry map (reference id -> subtree root id).
std::string SerializeForest(const topo::NavGraph& dag, const topo::Forest& forest,
                            const DescribeOptions& options,
                            const std::set<int>* keep = nullptr);

// Whether the serializer would attach this node's description (key control
// types and navigation non-leaves get them; §4.2).
bool WantsDescription(const topo::NavGraph& dag, const topo::Forest& forest,
                      const topo::TreeNode& node);

}  // namespace desc

#endif  // SRC_DESCRIBE_SERIALIZE_H_
