// TopologyCatalog: the query-on-demand layer (paper §3.3).
//
// By default the LLM receives a *limited-depth core*: the forest pruned to a
// configurable depth, with large homogeneous enumerations (font lists, symbol
// grids) and manually-excluded nodes elided. When the core lacks required
// structure, the LLM issues further_query commands:
//   - targeted: expand the substructure beneath one node id;
//   - global (-1): retrieve the complete forest.
//
// The forest is immutable after construction, so every serialization and
// token count is computed at most once: FullText/FullTokens/CoreTokens and
// the per-shared-subtree serializations are lazy, thread-safe (std::call_once)
// caches whose hit/miss tallies land on the describe.* metrics (DESIGN.md §9).
#ifndef SRC_DESCRIBE_CATALOG_H_
#define SRC_DESCRIBE_CATALOG_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/describe/serialize.h"
#include "src/support/status.h"
#include "src/topology/nav_graph.h"
#include "src/topology/transform.h"

namespace desc {

struct PruneOptions {
  // Depth of the default core (root = depth 0); §3.3 suggests ~six levels.
  int max_depth = 8;
  // A node with more than this many children, ≥90% of one type, is treated
  // as a large enumeration: children elided from the core.
  size_t enumeration_limit = 40;
  // Manually identified nodes whose subtrees are excluded from the core.
  std::set<std::string> manual_exclude_names;
};

struct CoreStats {
  size_t kept = 0;
  size_t elided = 0;
  size_t elided_enumerations = 0;  // distinct enumerations collapsed
};

// Everything the catalog computed from the forest, captured for the binary
// model artifact (DESIGN.md §14): the pruned core (membership, stats, text)
// plus every memoized serialization and token count, so a cold load re-runs
// none of the describe/tokenize pipeline.
struct CatalogSnapshot {
  std::vector<int> core_ids;  // ascending forest ids of the pruned core
  CoreStats core_stats;
  std::string core_text;
  size_t core_tokens = 0;
  size_t full_tokens = 0;
  std::vector<std::string> subtree_texts;  // one per shared subtree
};

class TopologyCatalog {
 public:
  TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest, PruneOptions prune,
                  DescribeOptions describe);

  // Like the primary constructor, but pre-seeds selected shared-subtree
  // serializations with strings carried over from a previous catalog whose
  // corresponding subtrees are structurally identical (delta recompile,
  // DESIGN.md §15). `seeds[s] == nullptr` (or seeds shorter than the shared
  // list) leaves subtree `s` lazily computed as usual. The core is always
  // computed fresh — splices shift forest ids, so the core serialization
  // cannot be carried over.
  TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest, PruneOptions prune,
                  DescribeOptions describe, const std::vector<const std::string*>& seeds);

  // Captures the core plus all memoized serializations/token counts for the
  // artifact writer, forcing any cache not yet populated (compile-side cost).
  CatalogSnapshot Snapshot() const;

  // Rebuilds a catalog from a loaded snapshot without re-running the
  // describe/tokenize pipeline: the core is adopted as-is and the lazy
  // caches are pre-seeded (their once-flags burnt with the loaded values).
  // FullText() stays lazy — it composes from the seeded per-subtree
  // serializations on first use, byte-identical to a fresh catalog's.
  static std::unique_ptr<TopologyCatalog> FromSnapshot(const topo::NavGraph* dag,
                                                       topo::Forest forest,
                                                       DescribeOptions describe,
                                                       CatalogSnapshot snapshot);

  const topo::Forest& forest() const { return forest_; }
  const topo::NavGraph& dag() const { return *dag_; }

  // Serialized pruned core (what every LLM call carries by default).
  const std::string& CoreText() const { return core_text_; }
  size_t CoreTokens() const;

  // Serialized complete forest (further_query -1). Cached after the first
  // call; byte-identical to FullTextUncached() forever.
  const std::string& FullText() const;
  size_t FullTokens() const;

  // The reference (cache-bypassing) serialization — benches and tests assert
  // the cached output byte-identical against it.
  std::string FullTextUncached() const;

  // Memoized serialization of one shared subtree (no pruning); shared by
  // FullText and ExpandBranch. Errors are impossible: callers index by a
  // valid subtree id.
  const std::string& SubtreeText(int subtree) const;

  // Targeted branch query: the full substructure beneath `id` (further_query
  // with a node id). Errors on unknown ids.
  support::Result<std::string> ExpandBranch(int id) const;

  // Whether the id is part of the default core.
  bool InCore(int id) const { return core_ids_.contains(id); }

  const CoreStats& core_stats() const { return core_stats_; }

 private:
  // Shared-state ctor for FromSnapshot: wires dag/forest/describe and sizes
  // the lazy-cache arrays, computing nothing.
  struct FromSnapshotTag {};
  TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest, DescribeOptions describe,
                  FromSnapshotTag);

  void ComputeCore(const PruneOptions& prune);

  const topo::NavGraph* dag_;
  topo::Forest forest_;
  DescribeOptions describe_;
  IdSet core_ids_;
  CoreStats core_stats_;
  std::string core_text_;

  // Lazy, thread-safe caches (the forest is immutable after construction).
  mutable std::once_flag full_text_once_;
  mutable std::string full_text_;
  mutable std::once_flag full_tokens_once_;
  mutable size_t full_tokens_ = 0;
  mutable std::once_flag core_tokens_once_;
  mutable size_t core_tokens_ = 0;
  mutable std::unique_ptr<std::once_flag[]> subtree_once_;
  mutable std::vector<std::string> subtree_text_;
};

}  // namespace desc

#endif  // SRC_DESCRIBE_CATALOG_H_
