#include "src/describe/augment.h"

#include "src/support/strings.h"

namespace desc {
namespace {

bool IsLeafNode(const topo::NavGraph& graph, int node) {
  return graph.successors(node).empty();
}

}  // namespace

std::vector<AugmentRule> BuiltinAugmentRules() {
  std::vector<AugmentRule> rules;

  // Edits and combo boxes: the §5.7 Name Box lesson — input may not commit
  // until ENTER; an agent must be told explicitly.
  rules.push_back(AugmentRule{
      "edit-commit",
      [](const topo::NavGraph& g, int n) {
        const auto t = g.node(n).type;
        return t == uia::ControlType::kEdit || t == uia::ControlType::kComboBox;
      },
      [](const topo::NavGraph& g, int n) {
        return "Text input field '" + g.node(n).name +
               "'; typed input may require ENTER to commit";
      }});

  // Navigation hosts: summarize what they lead to.
  rules.push_back(AugmentRule{
      "menu-host",
      [](const topo::NavGraph& g, int n) {
        return !IsLeafNode(g, n) && n != topo::NavGraph::kRootIndex;
      },
      [](const topo::NavGraph& g, int n) {
        return support::Format("opens %zu nested control(s)", g.successors(n).size());
      }});

  // Window-disposal buttons.
  rules.push_back(AugmentRule{
      "dialog-button",
      [](const topo::NavGraph& g, int n) {
        const std::string& name = g.node(n).name;
        return IsLeafNode(g, n) && (name == "OK" || name == "Cancel" || name == "Close");
      },
      [](const topo::NavGraph& g, int n) {
        const std::string& name = g.node(n).name;
        if (name == "OK") {
          return std::string("commits the dialog's changes and closes it");
        }
        if (name == "Cancel") {
          return std::string("discards the dialog's changes and closes it");
        }
        return std::string("closes the window");
      }});

  // Toggles.
  rules.push_back(AugmentRule{
      "toggle",
      [](const topo::NavGraph& g, int n) {
        return g.node(n).type == uia::ControlType::kCheckBox;
      },
      [](const topo::NavGraph& g, int n) {
        return "Checkbox '" + g.node(n).name + "': flips between on and off";
      }});

  return rules;
}

AugmentStats AugmentDescriptions(topo::NavGraph& graph,
                                 const std::vector<AugmentRule>& rules) {
  AugmentStats stats;
  for (size_t i = 1; i < graph.node_count(); ++i) {
    const int node = static_cast<int>(i);
    ++stats.visited;
    if (!graph.node(node).description.empty()) {
      ++stats.skipped_existing;
      continue;
    }
    for (const AugmentRule& rule : rules) {
      if (rule.applies(graph, node)) {
        graph.mutable_node(node).description = rule.synthesize(graph, node);
        ++stats.augmented;
        break;
      }
    }
  }
  return stats;
}

}  // namespace desc
