// Description augmentation — the paper's §5.7 "Rich control descriptions"
// lesson: "Future work can augment the textual navigation topology with
// descriptions synthesized from documentation or curated by LLMs."
//
// This module implements the rule-based half of that future work: a set of
// synthesis rules that attach operational descriptions to controls whose
// application metadata is silent — commit requirements for edits, dialog
// pointers for launchers, palette-role reminders for shared-subtree hosts.
// Rules never overwrite an application-provided description.
#ifndef SRC_DESCRIBE_AUGMENT_H_
#define SRC_DESCRIBE_AUGMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/topology/nav_graph.h"

namespace desc {

// One synthesis rule: if `applies` matches the node (given the graph context),
// `synthesize` produces a description.
struct AugmentRule {
  std::string name;
  std::function<bool(const topo::NavGraph&, int node)> applies;
  std::function<std::string(const topo::NavGraph&, int node)> synthesize;
};

// The built-in rule set:
//   edit-commit     Edit/ComboBox controls: note that input may need ENTER;
//   menu-host       non-leaf nodes: name how many child functions they hold;
//   dialog-button   OK/Cancel/Close leaves: state the disposal semantics;
//   toggle          CheckBox leaves: note on/off semantics.
std::vector<AugmentRule> BuiltinAugmentRules();

struct AugmentStats {
  size_t visited = 0;
  size_t augmented = 0;
  size_t skipped_existing = 0;  // app already documented the control
};

// Applies the rules to every node missing a description; returns statistics.
// Mutates the graph's NodeInfo::description fields in place.
AugmentStats AugmentDescriptions(topo::NavGraph& graph,
                                 const std::vector<AugmentRule>& rules);

}  // namespace desc

#endif  // SRC_DESCRIBE_AUGMENT_H_
