#include "src/describe/catalog.h"

#include <functional>
#include <map>

#include "src/text/tokens.h"

namespace desc {
namespace {

// True if the node's children form a large homogeneous enumeration.
bool IsLargeEnumeration(const topo::NavGraph& dag, const topo::Tree& tree,
                        const topo::TreeNode& node, size_t limit) {
  if (node.children.size() <= limit) {
    return false;
  }
  std::map<uia::ControlType, size_t> type_counts;
  for (int child : node.children) {
    const topo::TreeNode& cn = tree.nodes[static_cast<size_t>(child)];
    if (cn.is_reference) {
      continue;
    }
    ++type_counts[dag.node(cn.graph_index).type];
  }
  size_t top = 0;
  for (const auto& [type, count] : type_counts) {
    top = std::max(top, count);
  }
  return top * 10 >= node.children.size() * 9;
}

}  // namespace

TopologyCatalog::TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest,
                                 PruneOptions prune, DescribeOptions describe)
    : dag_(dag), forest_(std::move(forest)), describe_(describe) {
  ComputeCore(prune);
  core_text_ = SerializeForest(*dag_, forest_, describe_, &core_ids_);
}

void TopologyCatalog::ComputeCore(const PruneOptions& prune) {
  // Walk every tree, keeping nodes up to max_depth, eliding large
  // enumerations' children and manually excluded subtrees.
  std::function<void(const topo::Tree&, int, int)> visit = [&](const topo::Tree& tree,
                                                               int index, int depth) {
    const topo::TreeNode& node = tree.nodes[static_cast<size_t>(index)];
    core_ids_.insert(node.id);
    ++core_stats_.kept;
    if (node.is_reference) {
      return;
    }
    if (depth >= prune.max_depth) {
      core_stats_.elided += node.children.size();
      return;
    }
    const topo::NodeInfo& info = dag_->node(node.graph_index);
    if (prune.manual_exclude_names.count(info.name) > 0) {
      core_stats_.elided += node.children.size();
      return;
    }
    if (IsLargeEnumeration(*dag_, tree, node, prune.enumeration_limit)) {
      core_stats_.elided += node.children.size();
      ++core_stats_.elided_enumerations;
      return;
    }
    for (int child : node.children) {
      visit(tree, child, depth + 1);
    }
  };
  visit(forest_.main(), 0, 0);
  for (const topo::Tree& tree : forest_.shared()) {
    if (!tree.nodes.empty()) {
      visit(tree, 0, 0);
    }
  }
}

size_t TopologyCatalog::CoreTokens() const { return textutil::CountTokens(core_text_); }

std::string TopologyCatalog::FullText() const {
  return SerializeForest(*dag_, forest_, describe_, nullptr);
}

size_t TopologyCatalog::FullTokens() const { return textutil::CountTokens(FullText()); }

support::Result<std::string> TopologyCatalog::ExpandBranch(int id) const {
  auto loc = forest_.LocateById(id);
  if (!loc.ok()) {
    return loc.status();
  }
  const topo::TreeNode* node = forest_.NodeAt(*loc);
  if (node->is_reference) {
    // Expanding a reference expands the shared subtree it points at.
    const topo::Tree& target = forest_.shared()[static_cast<size_t>(node->ref_subtree)];
    (void)target;
    return std::string("## Shared subtree S") + std::to_string(node->ref_subtree) + "\n" +
           SerializeTree(*dag_, forest_, node->ref_subtree, describe_, nullptr);
  }
  // Serialize the branch rooted at `id` without pruning: temporary keep-set
  // of the branch's ids.
  const topo::Tree& tree = loc->tree < 0 ? forest_.main()
                                         : forest_.shared()[static_cast<size_t>(loc->tree)];
  std::set<int> branch;
  std::function<void(int)> collect = [&](int index) {
    const topo::TreeNode& n = tree.nodes[static_cast<size_t>(index)];
    branch.insert(n.id);
    for (int child : n.children) {
      collect(child);
    }
  };
  collect(loc->node);
  // Also keep ancestors so the output is rooted and readable.
  int cursor = loc->node;
  while (cursor >= 0) {
    branch.insert(tree.nodes[static_cast<size_t>(cursor)].id);
    cursor = tree.nodes[static_cast<size_t>(cursor)].parent;
  }
  return SerializeTree(*dag_, forest_, loc->tree, describe_, &branch);
}

}  // namespace desc
