#include "src/describe/catalog.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/support/metrics.h"
#include "src/text/tokens.h"

namespace desc {
namespace {

// True if the node's children form a large homogeneous enumeration.
bool IsLargeEnumeration(const topo::NavGraph& dag, const topo::Tree& tree,
                        const topo::TreeNode& node, size_t limit) {
  if (node.children.size() <= limit) {
    return false;
  }
  std::map<uia::ControlType, size_t> type_counts;
  for (int child : node.children) {
    const topo::TreeNode& cn = tree.nodes[static_cast<size_t>(child)];
    if (cn.is_reference) {
      continue;
    }
    ++type_counts[dag.node(cn.graph_index).type];
  }
  size_t top = 0;
  for (const auto& [type, count] : type_counts) {
    top = std::max(top, count);
  }
  return top * 10 >= node.children.size() * 9;
}

}  // namespace

TopologyCatalog::TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest,
                                 PruneOptions prune, DescribeOptions describe)
    : dag_(dag), forest_(std::move(forest)), describe_(describe) {
  core_ids_ = IdSet(forest_.max_id());
  ComputeCore(prune);
  core_text_ = SerializeForest(*dag_, forest_, describe_, &core_ids_);
  subtree_once_ = std::make_unique<std::once_flag[]>(forest_.shared().size());
  subtree_text_.resize(forest_.shared().size());
}

TopologyCatalog::TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest,
                                 PruneOptions prune, DescribeOptions describe,
                                 const std::vector<const std::string*>& seeds)
    : TopologyCatalog(dag, std::move(forest), prune, describe) {
  static support::Counter& reused =
      support::MetricsRegistry::Global().GetCounter("describe.serialize_subtree_reused");
  const size_t limit = std::min(seeds.size(), forest_.shared().size());
  for (size_t s = 0; s < limit; ++s) {
    if (seeds[s] == nullptr) {
      continue;
    }
    // Burn the once-flag with the carried-over string; SubtreeText(s) then
    // always takes the hit path without counting a cache build.
    std::call_once(subtree_once_[s], [this, s, &seeds] { subtree_text_[s] = *seeds[s]; });
    reused.Increment();
  }
}

TopologyCatalog::TopologyCatalog(const topo::NavGraph* dag, topo::Forest forest,
                                 DescribeOptions describe, FromSnapshotTag)
    : dag_(dag), forest_(std::move(forest)), describe_(describe) {
  subtree_once_ = std::make_unique<std::once_flag[]>(forest_.shared().size());
  subtree_text_.resize(forest_.shared().size());
}

CatalogSnapshot TopologyCatalog::Snapshot() const {
  CatalogSnapshot snap;
  snap.core_ids.reserve(core_stats_.kept);
  for (int id = 0; id <= forest_.max_id(); ++id) {
    if (core_ids_.contains(id)) {
      snap.core_ids.push_back(id);
    }
  }
  snap.core_stats = core_stats_;
  snap.core_text = core_text_;
  snap.core_tokens = CoreTokens();
  snap.full_tokens = FullTokens();
  snap.subtree_texts.reserve(forest_.shared().size());
  for (size_t s = 0; s < forest_.shared().size(); ++s) {
    snap.subtree_texts.push_back(SubtreeText(static_cast<int>(s)));
  }
  return snap;
}

std::unique_ptr<TopologyCatalog> TopologyCatalog::FromSnapshot(const topo::NavGraph* dag,
                                                               topo::Forest forest,
                                                               DescribeOptions describe,
                                                               CatalogSnapshot snapshot) {
  auto catalog = std::unique_ptr<TopologyCatalog>(
      new TopologyCatalog(dag, std::move(forest), describe, FromSnapshotTag{}));
  catalog->core_ids_ = IdSet(catalog->forest_.max_id());
  for (int id : snapshot.core_ids) {
    catalog->core_ids_.insert(id);
  }
  catalog->core_stats_ = snapshot.core_stats;
  catalog->core_text_ = std::move(snapshot.core_text);
  // Seed the lazy caches by burning their once-flags with the loaded values;
  // later calls take the hit path without counting a cache build.
  std::call_once(catalog->core_tokens_once_,
                 [&] { catalog->core_tokens_ = snapshot.core_tokens; });
  std::call_once(catalog->full_tokens_once_,
                 [&] { catalog->full_tokens_ = snapshot.full_tokens; });
  const size_t subtrees =
      std::min(snapshot.subtree_texts.size(), catalog->forest_.shared().size());
  for (size_t s = 0; s < subtrees; ++s) {
    std::call_once(catalog->subtree_once_[s],
                   [&] { catalog->subtree_text_[s] = std::move(snapshot.subtree_texts[s]); });
  }
  return catalog;
}

void TopologyCatalog::ComputeCore(const PruneOptions& prune) {
  // Walk every tree, keeping nodes up to max_depth, eliding large
  // enumerations' children and manually excluded subtrees.
  std::function<void(const topo::Tree&, int, int)> visit = [&](const topo::Tree& tree,
                                                               int index, int depth) {
    const topo::TreeNode& node = tree.nodes[static_cast<size_t>(index)];
    core_ids_.insert(node.id);
    ++core_stats_.kept;
    if (node.is_reference) {
      return;
    }
    if (depth >= prune.max_depth) {
      core_stats_.elided += node.children.size();
      return;
    }
    const topo::NodeInfo& info = dag_->node(node.graph_index);
    if (prune.manual_exclude_names.count(info.name) > 0) {
      core_stats_.elided += node.children.size();
      return;
    }
    if (IsLargeEnumeration(*dag_, tree, node, prune.enumeration_limit)) {
      core_stats_.elided += node.children.size();
      ++core_stats_.elided_enumerations;
      return;
    }
    for (int child : node.children) {
      visit(tree, child, depth + 1);
    }
  };
  visit(forest_.main(), 0, 0);
  for (const topo::Tree& tree : forest_.shared()) {
    if (!tree.nodes.empty()) {
      visit(tree, 0, 0);
    }
  }
}

size_t TopologyCatalog::CoreTokens() const {
  static support::Counter& calls =
      support::MetricsRegistry::Global().GetCounter("describe.token_count_calls");
  calls.Increment();
  std::call_once(core_tokens_once_, [this] {
    static support::Counter& builds =
        support::MetricsRegistry::Global().GetCounter("describe.token_count_builds");
    builds.Increment();
    core_tokens_ = textutil::CountTokens(core_text_);
  });
  return core_tokens_;
}

const std::string& TopologyCatalog::FullText() const {
  static support::Counter& calls =
      support::MetricsRegistry::Global().GetCounter("describe.serialize_full_calls");
  calls.Increment();
  std::call_once(full_text_once_, [this] {
    static support::Counter& builds =
        support::MetricsRegistry::Global().GetCounter("describe.serialize_full_builds");
    builds.Increment();
    // Compose from the memoized per-subtree serializations (shared with
    // ExpandBranch); byte-identical to FullTextUncached(), asserted in tests.
    std::string out;
    out.reserve(forest_.total_nodes() * 28 + 64);
    out += "# Navigation topology\n## Main tree\n";
    out += SerializeTree(*dag_, forest_, -1, describe_, nullptr);
    out += "\n";
    for (size_t s = 0; s < forest_.shared().size(); ++s) {
      if (forest_.shared()[s].nodes.empty()) {
        continue;
      }
      out += "## Shared subtree S" + std::to_string(s) + "\n";
      out += SubtreeText(static_cast<int>(s));
      out += "\n";
    }
    out += SerializeEntryMap(forest_, nullptr);
    full_text_ = std::move(out);
  });
  return full_text_;
}

std::string TopologyCatalog::FullTextUncached() const {
  return SerializeForest(*dag_, forest_, describe_, nullptr);
}

size_t TopologyCatalog::FullTokens() const {
  static support::Counter& calls =
      support::MetricsRegistry::Global().GetCounter("describe.token_count_calls");
  calls.Increment();
  std::call_once(full_tokens_once_, [this] {
    static support::Counter& builds =
        support::MetricsRegistry::Global().GetCounter("describe.token_count_builds");
    builds.Increment();
    full_tokens_ = textutil::CountTokens(FullText());
  });
  return full_tokens_;
}

const std::string& TopologyCatalog::SubtreeText(int subtree) const {
  static support::Counter& calls =
      support::MetricsRegistry::Global().GetCounter("describe.serialize_subtree_calls");
  calls.Increment();
  std::call_once(subtree_once_[static_cast<size_t>(subtree)], [this, subtree] {
    static support::Counter& builds =
        support::MetricsRegistry::Global().GetCounter("describe.serialize_subtree_builds");
    builds.Increment();
    subtree_text_[static_cast<size_t>(subtree)] =
        SerializeTree(*dag_, forest_, subtree, describe_, nullptr);
  });
  return subtree_text_[static_cast<size_t>(subtree)];
}

support::Result<std::string> TopologyCatalog::ExpandBranch(int id) const {
  static support::Counter& calls =
      support::MetricsRegistry::Global().GetCounter("describe.expand_branch_calls");
  calls.Increment();
  auto loc = forest_.LocateById(id);
  if (!loc.ok()) {
    return loc.status();
  }
  const topo::TreeNode* node = forest_.NodeAt(*loc);
  if (node->is_reference) {
    // Expanding a reference expands the shared subtree it points at, served
    // from the memoized subtree serialization.
    return std::string("## Shared subtree S") + std::to_string(node->ref_subtree) + "\n" +
           SubtreeText(node->ref_subtree);
  }
  // Serialize the branch rooted at `id` without pruning: temporary keep-set
  // of the branch's ids.
  const topo::Tree& tree = loc->tree < 0 ? forest_.main()
                                         : forest_.shared()[static_cast<size_t>(loc->tree)];
  IdSet branch(forest_.max_id());
  std::function<void(int)> collect = [&](int index) {
    const topo::TreeNode& n = tree.nodes[static_cast<size_t>(index)];
    branch.insert(n.id);
    for (int child : n.children) {
      collect(child);
    }
  };
  collect(loc->node);
  // Also keep ancestors so the output is rooted and readable.
  int cursor = loc->node;
  while (cursor >= 0) {
    branch.insert(tree.nodes[static_cast<size_t>(cursor)].id);
    cursor = tree.nodes[static_cast<size_t>(cursor)].parent;
  }
  return SerializeTree(*dag_, forest_, loc->tree, describe_, &branch);
}

}  // namespace desc
