#include "src/describe/serialize.h"

#include "src/support/strings.h"
#include "src/text/tokens.h"

namespace desc {
namespace {

const topo::Tree& TreeOf(const topo::Forest& forest, int tree) {
  return tree < 0 ? forest.main() : forest.shared()[static_cast<size_t>(tree)];
}

void SerializeNode(const topo::NavGraph& dag, const topo::Forest& forest,
                   const topo::Tree& tree, int node_index, const DescribeOptions& options,
                   const std::set<int>* keep, std::string& out) {
  const topo::TreeNode& node = tree.nodes[static_cast<size_t>(node_index)];
  if (node.is_reference) {
    out += "@ref->S" + std::to_string(node.ref_subtree) + "_" + std::to_string(node.id);
    return;
  }
  const topo::NodeInfo& info = dag.node(node.graph_index);
  out += info.name.empty() ? "[Unnamed]" : info.name;
  // Type is attached for key control types and for navigation non-leaves;
  // plain leaf items omit it to save tokens.
  const bool non_leaf = !node.children.empty();
  if (uia::IsKeyControlType(info.type) || non_leaf) {
    out += "(";
    out += uia::ControlTypeName(info.type);
    out += ")";
  }
  if (options.include_descriptions && !info.description.empty() &&
      WantsDescription(dag, forest, node)) {
    out += "(";
    out += textutil::TruncateToTokens(info.description, options.max_description_tokens);
    out += ")";
  }
  out += "_" + std::to_string(node.id);

  // Children (respecting the keep-set).
  std::vector<int> emitted;
  size_t elided = 0;
  for (int child : node.children) {
    const topo::TreeNode& cn = tree.nodes[static_cast<size_t>(child)];
    if (keep != nullptr && keep->count(cn.id) == 0) {
      ++elided;
      continue;
    }
    emitted.push_back(child);
  }
  if (emitted.empty() && elided == 0) {
    return;
  }
  out += "[";
  for (size_t i = 0; i < emitted.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    SerializeNode(dag, forest, tree, emitted[i], options, keep, out);
  }
  if (elided > 0) {
    if (!emitted.empty()) {
      out += ",";
    }
    out += "+" + std::to_string(elided) + " more";
  }
  out += "]";
}

}  // namespace

bool WantsDescription(const topo::NavGraph& dag, const topo::Forest& forest,
                      const topo::TreeNode& node) {
  (void)forest;
  if (node.is_reference) {
    return false;
  }
  if (!node.children.empty()) {
    return true;  // navigation nodes are few but pivotal (§4.2)
  }
  return uia::IsKeyControlType(dag.node(node.graph_index).type);
}

std::string SerializeTree(const topo::NavGraph& dag, const topo::Forest& forest, int tree,
                          const DescribeOptions& options, const std::set<int>* keep) {
  const topo::Tree& t = TreeOf(forest, tree);
  if (t.nodes.empty()) {
    return "";
  }
  std::string out;
  SerializeNode(dag, forest, t, 0, options, keep, out);
  return out;
}

std::string SerializeForest(const topo::NavGraph& dag, const topo::Forest& forest,
                            const DescribeOptions& options, const std::set<int>* keep) {
  std::string out = "# Navigation topology\n## Main tree\n";
  out += SerializeTree(dag, forest, -1, options, keep);
  out += "\n";
  for (size_t s = 0; s < forest.shared().size(); ++s) {
    // A shared subtree whose every node is pruned away can be skipped.
    if (keep != nullptr) {
      const topo::TreeNode& root = forest.shared()[s].nodes[0];
      if (keep->count(root.id) == 0) {
        continue;
      }
    }
    out += "## Shared subtree S" + std::to_string(s) + "\n";
    out += SerializeTree(dag, forest, static_cast<int>(s), options, keep);
    out += "\n";
  }
  // Entry map: reference id -> subtree root id (paper §3.3 "shared subtree
  // entry map").
  std::string entries;
  auto scan = [&](const topo::Tree& t) {
    for (const topo::TreeNode& n : t.nodes) {
      if (!n.is_reference) {
        continue;
      }
      if (keep != nullptr && keep->count(n.id) == 0) {
        continue;
      }
      const topo::TreeNode& root =
          forest.shared()[static_cast<size_t>(n.ref_subtree)].nodes[0];
      if (!entries.empty()) {
        entries += ",";
      }
      entries += std::to_string(n.id) + "->S" + std::to_string(n.ref_subtree) + ":" +
                 std::to_string(root.id);
    }
  };
  scan(forest.main());
  for (const topo::Tree& t : forest.shared()) {
    scan(t);
  }
  if (!entries.empty()) {
    out += "## Entry map (ref_id->subtree:root_id)\n" + entries + "\n";
  }
  return out;
}

}  // namespace desc
