#include "src/describe/serialize.h"

#include "src/support/strings.h"
#include "src/text/tokens.h"

namespace desc {
namespace {

// Rough serialized footprint per node, used to pre-reserve output strings
// (name + type + truncated description + id + brackets).
constexpr size_t kReservePerNode = 28;

const topo::Tree& TreeOf(const topo::Forest& forest, int tree) {
  return tree < 0 ? forest.main() : forest.shared()[static_cast<size_t>(tree)];
}

void SerializeNode(const topo::NavGraph& dag, const topo::Forest& forest,
                   const topo::Tree& tree, int node_index, const DescribeOptions& options,
                   const IdSet* keep, std::string& out) {
  const topo::TreeNode& node = tree.nodes[static_cast<size_t>(node_index)];
  if (node.is_reference) {
    out += "@ref->S" + std::to_string(node.ref_subtree) + "_" + std::to_string(node.id);
    return;
  }
  const topo::NodeInfo& info = dag.node(node.graph_index);
  out += info.name.empty() ? "[Unnamed]" : info.name;
  // Type is attached for key control types and for navigation non-leaves;
  // plain leaf items omit it to save tokens.
  const bool non_leaf = !node.children.empty();
  if (uia::IsKeyControlType(info.type) || non_leaf) {
    out += "(";
    out += uia::ControlTypeName(info.type);
    out += ")";
  }
  if (options.include_descriptions && !info.description.empty() &&
      WantsDescription(dag, forest, node)) {
    out += "(";
    out += textutil::TruncateToTokens(info.description, options.max_description_tokens);
    out += ")";
  }
  out += "_" + std::to_string(node.id);

  // Children (respecting the keep-set).
  std::vector<int> emitted;
  size_t elided = 0;
  for (int child : node.children) {
    const topo::TreeNode& cn = tree.nodes[static_cast<size_t>(child)];
    if (keep != nullptr && !keep->contains(cn.id)) {
      ++elided;
      continue;
    }
    emitted.push_back(child);
  }
  if (emitted.empty() && elided == 0) {
    return;
  }
  out += "[";
  for (size_t i = 0; i < emitted.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    SerializeNode(dag, forest, tree, emitted[i], options, keep, out);
  }
  if (elided > 0) {
    if (!emitted.empty()) {
      out += ",";
    }
    out += "+" + std::to_string(elided) + " more";
  }
  out += "]";
}

// A shared subtree's section is emitted iff its root survives `keep`.
bool SubtreeEmitted(const topo::Forest& forest, int subtree, const IdSet* keep) {
  const topo::Tree& tree = forest.shared()[static_cast<size_t>(subtree)];
  if (tree.nodes.empty()) {
    return false;
  }
  return keep == nullptr || keep->contains(tree.nodes[0].id);
}

}  // namespace

bool WantsDescription(const topo::NavGraph& dag, const topo::Forest& forest,
                      const topo::TreeNode& node) {
  (void)forest;
  if (node.is_reference) {
    return false;
  }
  if (!node.children.empty()) {
    return true;  // navigation nodes are few but pivotal (§4.2)
  }
  return uia::IsKeyControlType(dag.node(node.graph_index).type);
}

std::string SerializeTree(const topo::NavGraph& dag, const topo::Forest& forest, int tree,
                          const DescribeOptions& options, const IdSet* keep) {
  const topo::Tree& t = TreeOf(forest, tree);
  if (t.nodes.empty()) {
    return "";
  }
  std::string out;
  out.reserve(t.nodes.size() * kReservePerNode);
  SerializeNode(dag, forest, t, 0, options, keep, out);
  return out;
}

std::string SerializeEntryMap(const topo::Forest& forest, const IdSet* keep) {
  // Entry map: reference id -> subtree root id (paper §3.3 "shared subtree
  // entry map"), via the precomputed reverse-reference index. An entry is
  // suppressed when its reference is pruned, and also when the target
  // subtree's section was itself pruned away: the entry would otherwise point
  // at text that was never serialized.
  std::string entries;
  entries.reserve(forest.AllReferences().size() * 12);
  for (const topo::ReferenceEntry& ref : forest.AllReferences()) {
    if (keep != nullptr && !keep->contains(ref.ref_id)) {
      continue;
    }
    if (!SubtreeEmitted(forest, ref.subtree, keep)) {
      continue;
    }
    const topo::TreeNode& root =
        forest.shared()[static_cast<size_t>(ref.subtree)].nodes[0];
    if (!entries.empty()) {
      entries += ",";
    }
    entries += std::to_string(ref.ref_id) + "->S" + std::to_string(ref.subtree) + ":" +
               std::to_string(root.id);
  }
  if (entries.empty()) {
    return "";
  }
  return "## Entry map (ref_id->subtree:root_id)\n" + entries + "\n";
}

std::string SerializeForest(const topo::NavGraph& dag, const topo::Forest& forest,
                            const DescribeOptions& options, const IdSet* keep) {
  std::string out;
  out.reserve(forest.total_nodes() * kReservePerNode + 64);
  out += "# Navigation topology\n## Main tree\n";
  out += SerializeTree(dag, forest, -1, options, keep);
  out += "\n";
  for (size_t s = 0; s < forest.shared().size(); ++s) {
    // A shared subtree whose root is pruned away is skipped entirely.
    if (!SubtreeEmitted(forest, static_cast<int>(s), keep)) {
      continue;
    }
    out += "## Shared subtree S" + std::to_string(s) + "\n";
    out += SerializeTree(dag, forest, static_cast<int>(s), options, keep);
    out += "\n";
  }
  out += SerializeEntryMap(forest, keep);
  return out;
}

}  // namespace desc
