#include "src/json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace jsonv {

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    return nullptr;
  }
  return &it->second;
}

std::string Value::GetString(std::string_view key, std::string fallback) const {
  const Value* v = Find(key);
  if (v != nullptr && v->is_string()) {
    return v->as_string();
  }
  return fallback;
}

int64_t Value::GetInt(std::string_view key, int64_t fallback) const {
  const Value* v = Find(key);
  if (v != nullptr && v->is_number()) {
    return v->as_int();
  }
  return fallback;
}

double Value::GetDouble(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  if (v != nullptr && v->is_number()) {
    return v->as_double();
  }
  return fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* v = Find(key);
  if (v != nullptr && v->is_bool()) {
    return v->as_bool();
  }
  return fallback;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    // Numeric cross-type comparison (1 == 1.0).
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string EscapeString(std::string_view raw) {
  std::string out = "\"";
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::Format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Value::DumpTo(std::string& out, int indent, bool pretty) const {
  auto newline = [&](int level) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<size_t>(level) * 2, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_) && double_ == static_cast<double>(static_cast<int64_t>(double_)) &&
          std::abs(double_) < 1e15) {
        out += std::to_string(static_cast<int64_t>(double_));
      } else if (std::isfinite(double_)) {
        std::string num = support::Format("%.17g", double_);
        // Trim to shortest round-trippable-ish representation.
        double best = std::strtod(num.c_str(), nullptr);
        for (int prec = 1; prec <= 16; ++prec) {
          std::string candidate = support::Format("%.*g", prec, double_);
          if (std::strtod(candidate.c_str(), nullptr) == best) {
            num = candidate;
            break;
          }
        }
        out += num;
      } else {
        out += "null";  // JSON has no NaN/Inf.
      }
      break;
    }
    case Type::kString:
      out += EscapeString(string_);
      break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        newline(indent + 1);
        array_[i].DumpTo(out, indent + 1, pretty);
      }
      if (!array_.empty()) {
        newline(indent);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) {
          out += ',';
        }
        first = false;
        newline(indent + 1);
        out += EscapeString(key);
        out += pretty ? ": " : ":";
        value.DumpTo(out, indent + 1, pretty);
      }
      if (!object_.empty()) {
        newline(indent);
      }
      out += '}';
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(out, 0, /*pretty=*/false);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(out, 0, /*pretty=*/true);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  support::Result<Value> ParseDocument() {
    SkipWhitespace();
    auto value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  support::Status Error(const std::string& message) const {
    return support::InvalidArgumentError(
        support::Format("JSON parse error at offset %zu: %s", pos_, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  support::Result<Value> ParseValue() {
    if (depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) {
          return s.status();
        }
        return Value(std::move(*s));
      }
      case 't':
        return ParseLiteral("true", Value(true));
      case 'f':
        return ParseLiteral("false", Value(false));
      case 'n':
        return ParseLiteral("null", Value(nullptr));
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(support::Format("unexpected character '%c'", c));
    }
  }

  support::Result<Value> ParseLiteral(std::string_view literal, Value value) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return value;
    }
    return Error("invalid literal");
  }

  support::Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return Error("invalid number");
    }
    if (is_double) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    return Value(static_cast<int64_t>(v));
  }

  support::Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs not combined;
          // rare in our control names).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  support::Result<Value> ParseArray() {
    Consume('[');
    ++depth_;
    Array items;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Value(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      auto item = ParseValue();
      if (!item.ok()) {
        return item;
      }
      items.push_back(std::move(*item));
      SkipWhitespace();
      if (Consume(']')) {
        --depth_;
        return Value(std::move(items));
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  support::Result<Value> ParseObject() {
    Consume('{');
    ++depth_;
    Object members;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Value(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      SkipWhitespace();
      auto value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      members[std::move(*key)] = std::move(*value);
      SkipWhitespace();
      if (Consume('}')) {
        --depth_;
        return Value(std::move(members));
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

support::Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace jsonv
