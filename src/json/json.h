// From-scratch JSON value model, parser and writer.
//
// The visit interface (paper §3.4/§4.3) receives a JSON array of commands from
// the LLM; DMI also serializes navigation graphs and structured error feedback
// as JSON. This module is self-contained (no third-party dependency).
#ifndef SRC_JSON_JSON_H_
#define SRC_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace jsonv {

class Value;
using Array = std::vector<Value>;
// std::map keeps object keys ordered -> deterministic serialization.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

// A JSON value. Copyable; arrays/objects own their children.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(int i) : type_(Type::kInt), int_(i) {}
  Value(int64_t i) : type_(Type::kInt), int_(i) {}
  Value(double d) : type_(Type::kDouble), double_(d) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return is_double() ? static_cast<int64_t>(double_) : int_; }
  double as_double() const { return is_int() ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  // Object member access; returns nullptr if not an object or key absent.
  const Value* Find(std::string_view key) const;

  // Convenience typed getters with defaults.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Compact serialization (no whitespace).
  std::string Dump() const;
  // Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

  bool operator==(const Value& other) const;

 private:
  void DumpTo(std::string& out, int indent, bool pretty) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parses `text` as a single JSON document. Trailing non-whitespace is an error.
support::Result<Value> Parse(std::string_view text);

// Escapes a string for inclusion in JSON output (adds surrounding quotes).
std::string EscapeString(std::string_view raw);

}  // namespace jsonv

#endif  // SRC_JSON_JSON_H_
