file(REMOVE_RECURSE
  "../bench/bench_fig6_failures"
  "../bench/bench_fig6_failures.pdb"
  "CMakeFiles/bench_fig6_failures.dir/bench_fig6_failures.cc.o"
  "CMakeFiles/bench_fig6_failures.dir/bench_fig6_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
