# Empty dependencies file for bench_fig6_failures.
# This may be replaced when dependencies are built.
