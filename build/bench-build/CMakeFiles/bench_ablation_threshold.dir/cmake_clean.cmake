file(REMOVE_RECURSE
  "../bench/bench_ablation_threshold"
  "../bench/bench_ablation_threshold.pdb"
  "CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cc.o"
  "CMakeFiles/bench_ablation_threshold.dir/bench_ablation_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
