# Empty dependencies file for bench_table3_endtoend.
# This may be replaced when dependencies are built.
