file(REMOVE_RECURSE
  "../bench/bench_table3_endtoend"
  "../bench/bench_table3_endtoend.pdb"
  "CMakeFiles/bench_table3_endtoend.dir/bench_table3_endtoend.cc.o"
  "CMakeFiles/bench_table3_endtoend.dir/bench_table3_endtoend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
