# Empty dependencies file for bench_fig5a_success.
# This may be replaced when dependencies are built.
