file(REMOVE_RECURSE
  "../bench/bench_fig5a_success"
  "../bench/bench_fig5a_success.pdb"
  "CMakeFiles/bench_fig5a_success.dir/bench_fig5a_success.cc.o"
  "CMakeFiles/bench_fig5a_success.dir/bench_fig5a_success.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
