file(REMOVE_RECURSE
  "../bench/bench_fig5b_steps"
  "../bench/bench_fig5b_steps.pdb"
  "CMakeFiles/bench_fig5b_steps.dir/bench_fig5b_steps.cc.o"
  "CMakeFiles/bench_fig5b_steps.dir/bench_fig5b_steps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
