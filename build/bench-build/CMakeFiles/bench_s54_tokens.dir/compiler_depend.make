# Empty compiler generated dependencies file for bench_s54_tokens.
# This may be replaced when dependencies are built.
