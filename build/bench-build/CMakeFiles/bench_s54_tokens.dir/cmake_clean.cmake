file(REMOVE_RECURSE
  "../bench/bench_s54_tokens"
  "../bench/bench_s54_tokens.pdb"
  "CMakeFiles/bench_s54_tokens.dir/bench_s54_tokens.cc.o"
  "CMakeFiles/bench_s54_tokens.dir/bench_s54_tokens.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s54_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
