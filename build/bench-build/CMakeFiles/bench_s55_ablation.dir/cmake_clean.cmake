file(REMOVE_RECURSE
  "../bench/bench_s55_ablation"
  "../bench/bench_s55_ablation.pdb"
  "CMakeFiles/bench_s55_ablation.dir/bench_s55_ablation.cc.o"
  "CMakeFiles/bench_s55_ablation.dir/bench_s55_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s55_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
