file(REMOVE_RECURSE
  "../bench/bench_s52_modeling"
  "../bench/bench_s52_modeling.pdb"
  "CMakeFiles/bench_s52_modeling.dir/bench_s52_modeling.cc.o"
  "CMakeFiles/bench_s52_modeling.dir/bench_s52_modeling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s52_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
