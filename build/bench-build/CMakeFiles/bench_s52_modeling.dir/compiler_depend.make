# Empty compiler generated dependencies file for bench_s52_modeling.
# This may be replaced when dependencies are built.
