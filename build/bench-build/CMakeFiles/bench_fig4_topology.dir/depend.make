# Empty dependencies file for bench_fig4_topology.
# This may be replaced when dependencies are built.
