file(REMOVE_RECURSE
  "../bench/bench_fig4_topology"
  "../bench/bench_fig4_topology.pdb"
  "CMakeFiles/bench_fig4_topology.dir/bench_fig4_topology.cc.o"
  "CMakeFiles/bench_fig4_topology.dir/bench_fig4_topology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
