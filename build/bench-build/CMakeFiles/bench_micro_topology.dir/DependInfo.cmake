
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_topology.cc" "bench-build/CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cc.o" "gcc" "bench-build/CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dmi/CMakeFiles/dmi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dmi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ripper/CMakeFiles/dmi_ripper.dir/DependInfo.cmake"
  "/root/repo/build/src/describe/CMakeFiles/dmi_describe.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dmi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/dmi_json.dir/DependInfo.cmake"
  "/root/repo/build/src/gui/CMakeFiles/dmi_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/uia/CMakeFiles/dmi_uia.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dmi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
