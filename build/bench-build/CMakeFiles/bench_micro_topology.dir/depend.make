# Empty dependencies file for bench_micro_topology.
# This may be replaced when dependencies are built.
