file(REMOVE_RECURSE
  "../bench/bench_micro_topology"
  "../bench/bench_micro_topology.pdb"
  "CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cc.o"
  "CMakeFiles/bench_micro_topology.dir/bench_micro_topology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
