file(REMOVE_RECURSE
  "../bench/bench_ablation_robustness"
  "../bench/bench_ablation_robustness.pdb"
  "CMakeFiles/bench_ablation_robustness.dir/bench_ablation_robustness.cc.o"
  "CMakeFiles/bench_ablation_robustness.dir/bench_ablation_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
