file(REMOVE_RECURSE
  "../bench/bench_table1_examples"
  "../bench/bench_table1_examples.pdb"
  "CMakeFiles/bench_table1_examples.dir/bench_table1_examples.cc.o"
  "CMakeFiles/bench_table1_examples.dir/bench_table1_examples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
