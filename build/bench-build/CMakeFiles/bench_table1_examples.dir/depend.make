# Empty dependencies file for bench_table1_examples.
# This may be replaced when dependencies are built.
