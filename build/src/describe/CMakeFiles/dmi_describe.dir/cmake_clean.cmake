file(REMOVE_RECURSE
  "CMakeFiles/dmi_describe.dir/augment.cc.o"
  "CMakeFiles/dmi_describe.dir/augment.cc.o.d"
  "CMakeFiles/dmi_describe.dir/catalog.cc.o"
  "CMakeFiles/dmi_describe.dir/catalog.cc.o.d"
  "CMakeFiles/dmi_describe.dir/serialize.cc.o"
  "CMakeFiles/dmi_describe.dir/serialize.cc.o.d"
  "libdmi_describe.a"
  "libdmi_describe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_describe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
