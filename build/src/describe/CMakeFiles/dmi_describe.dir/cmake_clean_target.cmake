file(REMOVE_RECURSE
  "libdmi_describe.a"
)
