# Empty compiler generated dependencies file for dmi_describe.
# This may be replaced when dependencies are built.
