file(REMOVE_RECURSE
  "libdmi_topology.a"
)
