# Empty compiler generated dependencies file for dmi_topology.
# This may be replaced when dependencies are built.
