file(REMOVE_RECURSE
  "CMakeFiles/dmi_topology.dir/nav_graph.cc.o"
  "CMakeFiles/dmi_topology.dir/nav_graph.cc.o.d"
  "CMakeFiles/dmi_topology.dir/transform.cc.o"
  "CMakeFiles/dmi_topology.dir/transform.cc.o.d"
  "CMakeFiles/dmi_topology.dir/validate.cc.o"
  "CMakeFiles/dmi_topology.dir/validate.cc.o.d"
  "libdmi_topology.a"
  "libdmi_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
