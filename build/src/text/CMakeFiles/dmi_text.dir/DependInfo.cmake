
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/dmi_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/dmi_text.dir/similarity.cc.o.d"
  "/root/repo/src/text/tokens.cc" "src/text/CMakeFiles/dmi_text.dir/tokens.cc.o" "gcc" "src/text/CMakeFiles/dmi_text.dir/tokens.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
