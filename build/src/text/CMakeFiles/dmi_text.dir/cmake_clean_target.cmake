file(REMOVE_RECURSE
  "libdmi_text.a"
)
