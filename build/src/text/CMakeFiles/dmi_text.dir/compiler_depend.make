# Empty compiler generated dependencies file for dmi_text.
# This may be replaced when dependencies are built.
