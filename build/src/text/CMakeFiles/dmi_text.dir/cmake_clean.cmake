file(REMOVE_RECURSE
  "CMakeFiles/dmi_text.dir/similarity.cc.o"
  "CMakeFiles/dmi_text.dir/similarity.cc.o.d"
  "CMakeFiles/dmi_text.dir/tokens.cc.o"
  "CMakeFiles/dmi_text.dir/tokens.cc.o.d"
  "libdmi_text.a"
  "libdmi_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
