# Empty dependencies file for dmi_apps.
# This may be replaced when dependencies are built.
