file(REMOVE_RECURSE
  "CMakeFiles/dmi_apps.dir/excel_sim.cc.o"
  "CMakeFiles/dmi_apps.dir/excel_sim.cc.o.d"
  "CMakeFiles/dmi_apps.dir/office_common.cc.o"
  "CMakeFiles/dmi_apps.dir/office_common.cc.o.d"
  "CMakeFiles/dmi_apps.dir/ppoint_sim.cc.o"
  "CMakeFiles/dmi_apps.dir/ppoint_sim.cc.o.d"
  "CMakeFiles/dmi_apps.dir/word_sim.cc.o"
  "CMakeFiles/dmi_apps.dir/word_sim.cc.o.d"
  "libdmi_apps.a"
  "libdmi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
