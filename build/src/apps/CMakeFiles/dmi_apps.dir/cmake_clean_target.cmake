file(REMOVE_RECURSE
  "libdmi_apps.a"
)
