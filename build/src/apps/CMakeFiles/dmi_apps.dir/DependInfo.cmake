
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/excel_sim.cc" "src/apps/CMakeFiles/dmi_apps.dir/excel_sim.cc.o" "gcc" "src/apps/CMakeFiles/dmi_apps.dir/excel_sim.cc.o.d"
  "/root/repo/src/apps/office_common.cc" "src/apps/CMakeFiles/dmi_apps.dir/office_common.cc.o" "gcc" "src/apps/CMakeFiles/dmi_apps.dir/office_common.cc.o.d"
  "/root/repo/src/apps/ppoint_sim.cc" "src/apps/CMakeFiles/dmi_apps.dir/ppoint_sim.cc.o" "gcc" "src/apps/CMakeFiles/dmi_apps.dir/ppoint_sim.cc.o.d"
  "/root/repo/src/apps/word_sim.cc" "src/apps/CMakeFiles/dmi_apps.dir/word_sim.cc.o" "gcc" "src/apps/CMakeFiles/dmi_apps.dir/word_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gui/CMakeFiles/dmi_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/uia/CMakeFiles/dmi_uia.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dmi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
