# Empty compiler generated dependencies file for dmi_support.
# This may be replaced when dependencies are built.
