file(REMOVE_RECURSE
  "CMakeFiles/dmi_support.dir/logging.cc.o"
  "CMakeFiles/dmi_support.dir/logging.cc.o.d"
  "CMakeFiles/dmi_support.dir/rng.cc.o"
  "CMakeFiles/dmi_support.dir/rng.cc.o.d"
  "CMakeFiles/dmi_support.dir/status.cc.o"
  "CMakeFiles/dmi_support.dir/status.cc.o.d"
  "CMakeFiles/dmi_support.dir/strings.cc.o"
  "CMakeFiles/dmi_support.dir/strings.cc.o.d"
  "libdmi_support.a"
  "libdmi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
