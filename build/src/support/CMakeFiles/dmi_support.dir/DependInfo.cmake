
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/logging.cc" "src/support/CMakeFiles/dmi_support.dir/logging.cc.o" "gcc" "src/support/CMakeFiles/dmi_support.dir/logging.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/support/CMakeFiles/dmi_support.dir/rng.cc.o" "gcc" "src/support/CMakeFiles/dmi_support.dir/rng.cc.o.d"
  "/root/repo/src/support/status.cc" "src/support/CMakeFiles/dmi_support.dir/status.cc.o" "gcc" "src/support/CMakeFiles/dmi_support.dir/status.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/support/CMakeFiles/dmi_support.dir/strings.cc.o" "gcc" "src/support/CMakeFiles/dmi_support.dir/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
