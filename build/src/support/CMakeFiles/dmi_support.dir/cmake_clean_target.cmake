file(REMOVE_RECURSE
  "libdmi_support.a"
)
