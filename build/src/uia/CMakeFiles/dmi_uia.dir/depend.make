# Empty dependencies file for dmi_uia.
# This may be replaced when dependencies are built.
