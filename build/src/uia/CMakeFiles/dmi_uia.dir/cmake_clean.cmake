file(REMOVE_RECURSE
  "CMakeFiles/dmi_uia.dir/control_type.cc.o"
  "CMakeFiles/dmi_uia.dir/control_type.cc.o.d"
  "CMakeFiles/dmi_uia.dir/element.cc.o"
  "CMakeFiles/dmi_uia.dir/element.cc.o.d"
  "CMakeFiles/dmi_uia.dir/tree.cc.o"
  "CMakeFiles/dmi_uia.dir/tree.cc.o.d"
  "libdmi_uia.a"
  "libdmi_uia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_uia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
