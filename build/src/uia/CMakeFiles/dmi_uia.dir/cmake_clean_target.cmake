file(REMOVE_RECURSE
  "libdmi_uia.a"
)
