
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uia/control_type.cc" "src/uia/CMakeFiles/dmi_uia.dir/control_type.cc.o" "gcc" "src/uia/CMakeFiles/dmi_uia.dir/control_type.cc.o.d"
  "/root/repo/src/uia/element.cc" "src/uia/CMakeFiles/dmi_uia.dir/element.cc.o" "gcc" "src/uia/CMakeFiles/dmi_uia.dir/element.cc.o.d"
  "/root/repo/src/uia/tree.cc" "src/uia/CMakeFiles/dmi_uia.dir/tree.cc.o" "gcc" "src/uia/CMakeFiles/dmi_uia.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dmi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
