# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("json")
subdirs("text")
subdirs("uia")
subdirs("gui")
subdirs("apps")
subdirs("ripper")
subdirs("topology")
subdirs("describe")
subdirs("dmi")
subdirs("agent")
subdirs("workload")
