file(REMOVE_RECURSE
  "CMakeFiles/dmi_core.dir/command.cc.o"
  "CMakeFiles/dmi_core.dir/command.cc.o.d"
  "CMakeFiles/dmi_core.dir/interaction.cc.o"
  "CMakeFiles/dmi_core.dir/interaction.cc.o.d"
  "CMakeFiles/dmi_core.dir/session.cc.o"
  "CMakeFiles/dmi_core.dir/session.cc.o.d"
  "CMakeFiles/dmi_core.dir/visit.cc.o"
  "CMakeFiles/dmi_core.dir/visit.cc.o.d"
  "libdmi_core.a"
  "libdmi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
