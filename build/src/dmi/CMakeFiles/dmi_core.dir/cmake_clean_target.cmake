file(REMOVE_RECURSE
  "libdmi_core.a"
)
