# Empty compiler generated dependencies file for dmi_core.
# This may be replaced when dependencies are built.
