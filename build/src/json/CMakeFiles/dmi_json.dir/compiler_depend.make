# Empty compiler generated dependencies file for dmi_json.
# This may be replaced when dependencies are built.
