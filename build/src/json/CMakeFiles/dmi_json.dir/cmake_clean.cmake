file(REMOVE_RECURSE
  "CMakeFiles/dmi_json.dir/json.cc.o"
  "CMakeFiles/dmi_json.dir/json.cc.o.d"
  "libdmi_json.a"
  "libdmi_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
