file(REMOVE_RECURSE
  "libdmi_json.a"
)
