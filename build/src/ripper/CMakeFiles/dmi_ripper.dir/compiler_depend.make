# Empty compiler generated dependencies file for dmi_ripper.
# This may be replaced when dependencies are built.
