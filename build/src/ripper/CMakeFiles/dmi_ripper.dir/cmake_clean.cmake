file(REMOVE_RECURSE
  "CMakeFiles/dmi_ripper.dir/identifier.cc.o"
  "CMakeFiles/dmi_ripper.dir/identifier.cc.o.d"
  "CMakeFiles/dmi_ripper.dir/ripper.cc.o"
  "CMakeFiles/dmi_ripper.dir/ripper.cc.o.d"
  "libdmi_ripper.a"
  "libdmi_ripper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_ripper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
