file(REMOVE_RECURSE
  "libdmi_ripper.a"
)
