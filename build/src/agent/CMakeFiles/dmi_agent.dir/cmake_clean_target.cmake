file(REMOVE_RECURSE
  "libdmi_agent.a"
)
