# Empty compiler generated dependencies file for dmi_agent.
# This may be replaced when dependencies are built.
