file(REMOVE_RECURSE
  "CMakeFiles/dmi_agent.dir/baseline_agent.cc.o"
  "CMakeFiles/dmi_agent.dir/baseline_agent.cc.o.d"
  "CMakeFiles/dmi_agent.dir/dmi_agent.cc.o"
  "CMakeFiles/dmi_agent.dir/dmi_agent.cc.o.d"
  "CMakeFiles/dmi_agent.dir/failure.cc.o"
  "CMakeFiles/dmi_agent.dir/failure.cc.o.d"
  "CMakeFiles/dmi_agent.dir/llm_profile.cc.o"
  "CMakeFiles/dmi_agent.dir/llm_profile.cc.o.d"
  "CMakeFiles/dmi_agent.dir/sim_llm.cc.o"
  "CMakeFiles/dmi_agent.dir/sim_llm.cc.o.d"
  "CMakeFiles/dmi_agent.dir/task_runner.cc.o"
  "CMakeFiles/dmi_agent.dir/task_runner.cc.o.d"
  "libdmi_agent.a"
  "libdmi_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
