file(REMOVE_RECURSE
  "libdmi_gui.a"
)
