# Empty compiler generated dependencies file for dmi_gui.
# This may be replaced when dependencies are built.
