
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gui/application.cc" "src/gui/CMakeFiles/dmi_gui.dir/application.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/application.cc.o.d"
  "/root/repo/src/gui/control.cc" "src/gui/CMakeFiles/dmi_gui.dir/control.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/control.cc.o.d"
  "/root/repo/src/gui/input.cc" "src/gui/CMakeFiles/dmi_gui.dir/input.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/input.cc.o.d"
  "/root/repo/src/gui/instability.cc" "src/gui/CMakeFiles/dmi_gui.dir/instability.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/instability.cc.o.d"
  "/root/repo/src/gui/screen.cc" "src/gui/CMakeFiles/dmi_gui.dir/screen.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/screen.cc.o.d"
  "/root/repo/src/gui/window.cc" "src/gui/CMakeFiles/dmi_gui.dir/window.cc.o" "gcc" "src/gui/CMakeFiles/dmi_gui.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uia/CMakeFiles/dmi_uia.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dmi_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
