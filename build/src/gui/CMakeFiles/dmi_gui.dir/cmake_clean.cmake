file(REMOVE_RECURSE
  "CMakeFiles/dmi_gui.dir/application.cc.o"
  "CMakeFiles/dmi_gui.dir/application.cc.o.d"
  "CMakeFiles/dmi_gui.dir/control.cc.o"
  "CMakeFiles/dmi_gui.dir/control.cc.o.d"
  "CMakeFiles/dmi_gui.dir/input.cc.o"
  "CMakeFiles/dmi_gui.dir/input.cc.o.d"
  "CMakeFiles/dmi_gui.dir/instability.cc.o"
  "CMakeFiles/dmi_gui.dir/instability.cc.o.d"
  "CMakeFiles/dmi_gui.dir/screen.cc.o"
  "CMakeFiles/dmi_gui.dir/screen.cc.o.d"
  "CMakeFiles/dmi_gui.dir/window.cc.o"
  "CMakeFiles/dmi_gui.dir/window.cc.o.d"
  "libdmi_gui.a"
  "libdmi_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
