file(REMOVE_RECURSE
  "CMakeFiles/dmi_workload.dir/tasks.cc.o"
  "CMakeFiles/dmi_workload.dir/tasks.cc.o.d"
  "libdmi_workload.a"
  "libdmi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
