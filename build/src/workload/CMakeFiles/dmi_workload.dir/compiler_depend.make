# Empty compiler generated dependencies file for dmi_workload.
# This may be replaced when dependencies are built.
