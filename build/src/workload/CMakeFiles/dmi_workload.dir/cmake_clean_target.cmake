file(REMOVE_RECURSE
  "libdmi_workload.a"
)
