# Empty compiler generated dependencies file for agent_showdown.
# This may be replaced when dependencies are built.
