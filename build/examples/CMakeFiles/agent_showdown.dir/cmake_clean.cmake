file(REMOVE_RECURSE
  "CMakeFiles/agent_showdown.dir/agent_showdown.cpp.o"
  "CMakeFiles/agent_showdown.dir/agent_showdown.cpp.o.d"
  "agent_showdown"
  "agent_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
