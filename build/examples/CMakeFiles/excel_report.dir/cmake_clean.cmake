file(REMOVE_RECURSE
  "CMakeFiles/excel_report.dir/excel_report.cpp.o"
  "CMakeFiles/excel_report.dir/excel_report.cpp.o.d"
  "excel_report"
  "excel_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excel_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
