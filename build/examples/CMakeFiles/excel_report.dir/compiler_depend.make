# Empty compiler generated dependencies file for excel_report.
# This may be replaced when dependencies are built.
