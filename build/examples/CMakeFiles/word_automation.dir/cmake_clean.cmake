file(REMOVE_RECURSE
  "CMakeFiles/word_automation.dir/word_automation.cpp.o"
  "CMakeFiles/word_automation.dir/word_automation.cpp.o.d"
  "word_automation"
  "word_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
