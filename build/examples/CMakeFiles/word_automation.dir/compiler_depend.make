# Empty compiler generated dependencies file for word_automation.
# This may be replaced when dependencies are built.
