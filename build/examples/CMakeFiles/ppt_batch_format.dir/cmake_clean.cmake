file(REMOVE_RECURSE
  "CMakeFiles/ppt_batch_format.dir/ppt_batch_format.cpp.o"
  "CMakeFiles/ppt_batch_format.dir/ppt_batch_format.cpp.o.d"
  "ppt_batch_format"
  "ppt_batch_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppt_batch_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
