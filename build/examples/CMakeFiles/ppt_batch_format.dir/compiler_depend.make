# Empty compiler generated dependencies file for ppt_batch_format.
# This may be replaced when dependencies are built.
