# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/uia_test[1]_include.cmake")
include("/root/repo/build/tests/gui_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/ripper_test[1]_include.cmake")
include("/root/repo/build/tests/describe_test[1]_include.cmake")
include("/root/repo/build/tests/dmi_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/interaction_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
