file(REMOVE_RECURSE
  "CMakeFiles/gui_test.dir/gui_test.cc.o"
  "CMakeFiles/gui_test.dir/gui_test.cc.o.d"
  "gui_test"
  "gui_test.pdb"
  "gui_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gui_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
