# Empty compiler generated dependencies file for gui_test.
# This may be replaced when dependencies are built.
