file(REMOVE_RECURSE
  "CMakeFiles/ripper_test.dir/ripper_test.cc.o"
  "CMakeFiles/ripper_test.dir/ripper_test.cc.o.d"
  "ripper_test"
  "ripper_test.pdb"
  "ripper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ripper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
