# Empty compiler generated dependencies file for ripper_test.
# This may be replaced when dependencies are built.
