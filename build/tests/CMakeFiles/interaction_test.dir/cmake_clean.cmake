file(REMOVE_RECURSE
  "CMakeFiles/interaction_test.dir/interaction_test.cc.o"
  "CMakeFiles/interaction_test.dir/interaction_test.cc.o.d"
  "interaction_test"
  "interaction_test.pdb"
  "interaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
