# Empty dependencies file for interaction_test.
# This may be replaced when dependencies are built.
