file(REMOVE_RECURSE
  "CMakeFiles/uia_test.dir/uia_test.cc.o"
  "CMakeFiles/uia_test.dir/uia_test.cc.o.d"
  "uia_test"
  "uia_test.pdb"
  "uia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
