
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/uia_test.cc" "tests/CMakeFiles/uia_test.dir/uia_test.cc.o" "gcc" "tests/CMakeFiles/uia_test.dir/uia_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uia/CMakeFiles/dmi_uia.dir/DependInfo.cmake"
  "/root/repo/build/src/gui/CMakeFiles/dmi_gui.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dmi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dmi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
