# Empty compiler generated dependencies file for uia_test.
# This may be replaced when dependencies are built.
