# Empty dependencies file for describe_test.
# This may be replaced when dependencies are built.
