file(REMOVE_RECURSE
  "CMakeFiles/describe_test.dir/describe_test.cc.o"
  "CMakeFiles/describe_test.dir/describe_test.cc.o.d"
  "describe_test"
  "describe_test.pdb"
  "describe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
