# Empty dependencies file for dmi_test.
# This may be replaced when dependencies are built.
