file(REMOVE_RECURSE
  "CMakeFiles/dmi_test.dir/dmi_test.cc.o"
  "CMakeFiles/dmi_test.dir/dmi_test.cc.o.d"
  "dmi_test"
  "dmi_test.pdb"
  "dmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
