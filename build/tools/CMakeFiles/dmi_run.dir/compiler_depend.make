# Empty compiler generated dependencies file for dmi_run.
# This may be replaced when dependencies are built.
