file(REMOVE_RECURSE
  "CMakeFiles/dmi_run.dir/dmi_run.cc.o"
  "CMakeFiles/dmi_run.dir/dmi_run.cc.o.d"
  "dmi_run"
  "dmi_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
