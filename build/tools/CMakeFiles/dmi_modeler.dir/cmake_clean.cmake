file(REMOVE_RECURSE
  "CMakeFiles/dmi_modeler.dir/dmi_modeler.cc.o"
  "CMakeFiles/dmi_modeler.dir/dmi_modeler.cc.o.d"
  "dmi_modeler"
  "dmi_modeler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmi_modeler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
