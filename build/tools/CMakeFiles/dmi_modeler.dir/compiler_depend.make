# Empty compiler generated dependencies file for dmi_modeler.
# This may be replaced when dependencies are built.
