#!/usr/bin/env python3
"""Minimal reference client for dmi_serve (DESIGN.md §16).

Spawns the daemon, streams serve::Request frames on its stdin, and prints
each serve::Response as it completes. The transport is 4-byte little-endian
length prefix + JSON payload, schema_version 1 — the same framing
tests/serve_test.cc drives in-process.

Usage:
  tools/serve_client.py --serve build/tools/dmi_serve \
      [--tenant acme] [--seed 42] [--repeat N] W3 E7 P1 ...

Each positional argument is a task id; --repeat sends the whole list N times
(seeds advance per request so repeats are distinct sessions).
"""

import argparse
import json
import struct
import subprocess
import sys


def write_frame(pipe, payload: bytes) -> None:
    pipe.write(struct.pack("<I", len(payload)) + payload)
    pipe.flush()


def read_frame(pipe):
    prefix = pipe.read(4)
    if len(prefix) == 0:
        return None  # clean EOF
    if len(prefix) < 4:
        raise IOError("truncated frame length prefix")
    (length,) = struct.unpack("<I", prefix)
    payload = pipe.read(length)
    if len(payload) < length:
        raise IOError("truncated frame payload")
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve", default="build/tools/dmi_serve",
                        help="path to the dmi_serve binary")
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument("--serve-arg", action="append", default=[],
                        help="extra flag passed through to dmi_serve "
                             "(repeatable, e.g. --serve-arg=--max-in-flight "
                             "--serve-arg=8)")
    parser.add_argument("--json", action="store_true",
                        help="print raw serve::Response JSON, one per line, "
                             "instead of the summary table")
    parser.add_argument("tasks", nargs="+", help="task ids (W3, E7, ...)")
    args = parser.parse_args()

    daemon = subprocess.Popen([args.serve] + args.serve_arg,
                              stdin=subprocess.PIPE, stdout=subprocess.PIPE)
    request_id = 0
    for round_index in range(args.repeat):
        for task in args.tasks:
            request_id += 1
            request = {
                "schema_version": 1,
                "request_id": request_id,
                "tenant": args.tenant,
                "task": task,
                "seed": args.seed + round_index,
            }
            write_frame(daemon.stdin, json.dumps(request).encode())
    daemon.stdin.close()  # graceful drain: daemon answers everything, exits

    ok = True
    while True:
        payload = read_frame(daemon.stdout)
        if payload is None:
            break
        response = json.loads(payload)
        status = response["status"]["code"]
        ok = ok and status == "OK"
        if args.json:
            print(payload.decode())
            continue
        run = response.get("run")
        verdict = ("ok" if run and run["success"] else "run-failed") \
            if status == "OK" else status
        print(f"#{response['request_id']:<4} {response['task']:<4} "
              f"tenant={response['tenant']:<10} {verdict:<18} "
              f"queue={response['queue_ms']:.1f}ms total={response['total_ms']:.1f}ms")
    return 0 if daemon.wait() == 0 and ok else 1


if __name__ == "__main__":
    sys.exit(main())
