#!/usr/bin/env python3
"""Fails when a gated metric in BENCH_perf.json regresses >20% vs baseline.

The perf harness (bench_micro_capture, bench_micro_describe, bench_micro_batch,
bench_serve_load, ...) folds derived rates into BENCH_perf.json; that file is a
build artifact and never committed. The committed reference is
bench/BENCH_baseline.json: conservative values set with margin vs typical
measurements (wall-clock speedups are machine-dependent; the
batching/residency gates are deterministic) but far from the failure mode a
regression produces (a lost cache collapses a speedup to ~1x; batching
degenerating to serial collapses the amortized speedup to ~1x; a serialized
admission path multiplies serving tail latency).

Each gate has a direction. "floor" gates (the default — speedups, rates,
throughput) fail when the measured value drops below
baseline * (1 - tolerance). "ceiling" gates (latencies, e.g. the serve_load
p99) fail when the value rises above baseline * (1 + tolerance).

The observed-vs-bound table is printed on pass AND fail, so CI logs always
show how much headroom each gate has left.

Exit codes: 0 pass, 1 regression, 77 skip (inputs missing — e.g. the benches
were not run in this build). 77 matches the ctest SKIP_RETURN_CODE wiring.

Usage:
  tools/check_bench_regression.py [--perf build/BENCH_perf.json]
                                  [--baseline bench/BENCH_baseline.json]
                                  [--tolerance 0.20]
                                  [--update-floors] [--headroom 0.20]

--update-floors rewrites the baseline: every covered metric present in the
perf results is re-bounded at observed * (1 - headroom) (floors) or
observed * (1 + headroom) (ceilings), rounded to 3 significant digits.
Rows/metrics absent from the perf results are left untouched. Run the full
micro-bench harness first, eyeball the diff, and commit it deliberately — the
mode exists to make intentional re-floors easy, not automatic.
"""

import argparse
import json
import math
import os
import sys

SKIP = 77

# (section, rows key, row id key, metric[, direction]) tuples covered by the
# check. direction defaults to "floor" (higher is better); "ceiling" gates
# latency-style metrics where lower is better.
CHECKS = [
    ("micro_capture", "lookup", "app", "warm_find_speedup"),
    ("micro_describe", "describe", "app", "warm_full_speedup"),
    ("micro_describe", "describe", "app", "warm_prompt_speedup"),
    ("micro_session", "sessions", "app", "warm_session_speedup"),
    ("micro_session", "pool", "app", "pooled_setup_speedup"),
    ("micro_batch", "batching", "batch_size", "amortized_speedup"),
    ("micro_batch", "batching", "batch_size", "tokens_per_sec"),
    ("micro_batch", "residency", "app", "resident_reduction"),
    ("micro_artifact", "artifact", "app", "cold_load_speedup"),
    ("micro_delta", "delta", "mutations", "delta_speedup"),
    ("micro_telemetry", "tracing", "case", "disabled_span_mops"),
    ("micro_telemetry", "tracing", "case", "traced_speedup"),
    ("ablation_faults", "levels", "level", "success_rate"),
    ("serve_load", "load", "scenario", "throughput_sps"),
    ("serve_load", "load", "scenario", "p99_ms", "ceiling"),
]


def normalize_check(check):
    """Expands a CHECKS tuple to (section, rows_key, id_key, metric, direction)."""
    if len(check) == 5:
        return check
    section, rows_key, id_key, metric = check
    return section, rows_key, id_key, metric, "floor"


def load_json(path, label):
    if not os.path.exists(path):
        print(f"[skip] {label} not found: {path}")
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"[skip] cannot read {label} {path}: {err}")
        return None


def rows_by_id(doc, section, rows_key, id_key):
    sec = doc.get(section)
    if not isinstance(sec, dict):
        return None
    rows = sec.get(rows_key)
    if not isinstance(rows, list):
        return None
    return {r[id_key]: r for r in rows if isinstance(r, dict) and id_key in r}


def round_sig(value, digits=3):
    if value == 0:
        return 0.0
    scale = digits - 1 - math.floor(math.log10(abs(value)))
    return round(value, scale)


def update_floors(perf, baseline, baseline_path, headroom):
    """Re-bounds the baseline from observed values (floors down, ceilings up)."""
    updated = 0
    for check in CHECKS:
        section, rows_key, id_key, metric, direction = normalize_check(check)
        base_rows = rows_by_id(baseline, section, rows_key, id_key)
        cur_rows = rows_by_id(perf, section, rows_key, id_key)
        if base_rows is None or cur_rows is None:
            continue
        for row_id, base_row in base_rows.items():
            if metric not in base_row:
                continue
            cur_row = cur_rows.get(row_id)
            if cur_row is None or metric not in cur_row:
                continue
            margin = -headroom if direction == "floor" else headroom
            new_bound = round_sig(float(cur_row[metric]) * (1.0 + margin))
            if new_bound != base_row[metric]:
                print(f"  {section}/{row_id}/{metric}: "
                      f"{base_row[metric]} -> {new_bound} "
                      f"(observed {float(cur_row[metric]):.1f}, {direction})")
                base_row[metric] = new_bound
                updated += 1
    if updated == 0:
        print("no floors changed")
        return 0
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"\nupdated {updated} floor(s) in {baseline_path} "
          f"(observed * {1.0 - headroom:.2f}); review and commit the diff")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perf", default="build/BENCH_perf.json")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--update-floors", action="store_true",
                        help="rewrite baseline floors from the current perf "
                             "results instead of checking")
    parser.add_argument("--headroom", type=float, default=0.20,
                        help="margin below observed values for --update-floors")
    args = parser.parse_args()

    perf = load_json(args.perf, "perf results")
    baseline = load_json(args.baseline, "baseline")
    if perf is None or baseline is None:
        return SKIP

    if args.update_floors:
        return update_floors(perf, baseline, args.baseline, args.headroom)

    header = f"  {'metric':<52} {'observed':>10} {'baseline':>10} {'bound':>10}  verdict"
    print(header)
    print("  " + "-" * (len(header) - 2))
    failures = []
    compared = 0
    skipped_sections = set()
    for check in CHECKS:
        section, rows_key, id_key, metric, direction = normalize_check(check)
        base_rows = rows_by_id(baseline, section, rows_key, id_key)
        cur_rows = rows_by_id(perf, section, rows_key, id_key)
        if base_rows is None:
            continue  # baseline does not cover this section
        if cur_rows is None:
            skipped_sections.add(section)  # bench not run in this build
            continue
        for row_id, base_row in sorted(base_rows.items(), key=lambda kv: str(kv[0])):
            if metric not in base_row:
                continue
            if direction == "floor":
                bound = float(base_row[metric]) * (1.0 - args.tolerance)
            else:
                bound = float(base_row[metric]) * (1.0 + args.tolerance)
            cur_row = cur_rows.get(row_id)
            name = f"{section}/{row_id}/{metric}"
            if cur_row is None or metric not in cur_row:
                failures.append(f"{name}: missing from perf results")
                print(f"  {name:<52} {'--':>10} {float(base_row[metric]):>10.1f} "
                      f"{bound:>10.1f}  MISSING")
                continue
            value = float(cur_row[metric])
            compared += 1
            ok = value >= bound if direction == "floor" else value <= bound
            verdict = "ok" if ok else "REGRESSION"
            print(f"  {name:<52} {value:>10.1f} {float(base_row[metric]):>10.1f} "
                  f"{bound:>10.1f}  {verdict}")
            if not ok:
                op = "<" if direction == "floor" else ">"
                failures.append(f"{name}: {value:.1f} {op} {direction} {bound:.1f}")

    for section in sorted(skipped_sections):
        print(f"[note] section '{section}' absent from {args.perf} (bench not run)")

    if compared == 0:
        print("[skip] no comparable metrics (run the micro benches first)")
        return SKIP
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nPASS: {compared} gated metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
