#!/usr/bin/env python3
"""Fails when a warm-path speedup in BENCH_perf.json regresses >20% vs baseline.

The perf harness (bench_micro_capture, bench_micro_describe) folds derived
rates into BENCH_perf.json; that file is a build artifact and never committed.
The committed reference is bench/BENCH_baseline.json: conservative floor
values for the warm-path speedups, set well below typical measurements (which
are machine-dependent and thousands of x) but far above the failure mode a
regression produces (a lost cache collapses a speedup to ~1x). A measured
value below baseline * (1 - tolerance) fails the check.

Exit codes: 0 pass, 1 regression, 77 skip (inputs missing — e.g. the benches
were not run in this build). 77 matches the ctest SKIP_RETURN_CODE wiring.

Usage:
  tools/check_bench_regression.py [--perf build/BENCH_perf.json]
                                  [--baseline bench/BENCH_baseline.json]
                                  [--tolerance 0.20]
"""

import argparse
import json
import os
import sys

SKIP = 77

# (section, rows key, row id key, metric) tuples covered by the check.
CHECKS = [
    ("micro_capture", "lookup", "app", "warm_find_speedup"),
    ("micro_describe", "describe", "app", "warm_full_speedup"),
    ("micro_describe", "describe", "app", "warm_prompt_speedup"),
    ("micro_session", "sessions", "app", "warm_session_speedup"),
    ("micro_session", "pool", "app", "pooled_setup_speedup"),
    ("ablation_faults", "levels", "level", "success_rate"),
]


def load_json(path, label):
    if not os.path.exists(path):
        print(f"[skip] {label} not found: {path}")
        return None
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"[skip] cannot read {label} {path}: {err}")
        return None


def rows_by_id(doc, section, rows_key, id_key):
    sec = doc.get(section)
    if not isinstance(sec, dict):
        return None
    rows = sec.get(rows_key)
    if not isinstance(rows, list):
        return None
    return {r[id_key]: r for r in rows if isinstance(r, dict) and id_key in r}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--perf", default="build/BENCH_perf.json")
    parser.add_argument("--baseline", default="bench/BENCH_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    perf = load_json(args.perf, "perf results")
    baseline = load_json(args.baseline, "baseline")
    if perf is None or baseline is None:
        return SKIP

    failures = []
    compared = 0
    skipped_sections = set()
    for section, rows_key, id_key, metric in CHECKS:
        base_rows = rows_by_id(baseline, section, rows_key, id_key)
        cur_rows = rows_by_id(perf, section, rows_key, id_key)
        if base_rows is None:
            continue  # baseline does not cover this section
        if cur_rows is None:
            skipped_sections.add(section)  # bench not run in this build
            continue
        for app, base_row in sorted(base_rows.items()):
            if metric not in base_row:
                continue
            floor = float(base_row[metric]) * (1.0 - args.tolerance)
            cur_row = cur_rows.get(app)
            if cur_row is None or metric not in cur_row:
                failures.append(f"{section}/{app}/{metric}: missing from perf results")
                continue
            value = float(cur_row[metric])
            compared += 1
            verdict = "ok" if value >= floor else "REGRESSION"
            print(f"  {section}/{app}/{metric}: {value:.1f} "
                  f"(baseline {float(base_row[metric]):.1f}, floor {floor:.1f}) {verdict}")
            if value < floor:
                failures.append(
                    f"{section}/{app}/{metric}: {value:.1f} < floor {floor:.1f}")

    for section in sorted(skipped_sections):
        print(f"[note] section '{section}' absent from {args.perf} (bench not run)")

    if compared == 0:
        print("[skip] no comparable metrics (run the micro benches first)")
        return SKIP
    if failures:
        print(f"\nFAIL: {len(failures)} warm-path regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nPASS: {compared} warm-path metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
