#!/usr/bin/env bash
# Build and run the concurrency-sensitive tests under ThreadSanitizer.
#
# The tracing/metrics layer is lock-light by design (thread-local span
# buffers, relaxed atomics, destructor-flushed tallies), the describe layer's
# catalog caches are call_once-lazy on an immutable forest, and the run
# harness shares one CompiledModel per app plus a mutex-guarded application
# pool across suite workers; this job is the proof. The robustness layer
# (per-run retry RNGs, deadlines, robust.* counters) runs on every suite
# worker concurrently, so the parallel robustness/determinism tests ride
# along here too — as do the fleet-batching tests (batch_test): concurrent
# Submit into the BatchScheduler and the shared static-prompt segment read
# from every suite worker. The causal-telemetry tests (telemetry_test)
# hammer the new surfaces: cross-thread TraceContext hand-off, labeled
# counter registration from four suite workers, and concurrent flight
# recorder writes from the visit executor and the batch scheduler. The
# model-artifact tests (artifact_test) cover the registry: eight threads
# Acquire the same (kind, version) concurrently — exactly one cold load,
# everyone else memoized — plus the loader's parse-worker overlap on
# multi-core hosts. The delta tests (delta_test) exercise the live-versioning
# path: a RefreshModel landing mid-suite while four workers resolve models,
# lease pooled apps across the generation bump, and read the old build's
# shared model — plus the FromParts lazy index built under concurrent
# FindNode readers. The serving tests (serve_test) put the whole stack behind
# the SessionManager: worker threads racing admission/quota accounting against
# Submit, a Shutdown draining the queue while a session is mid-run, and the
# ServeLoop's response writer fed from every worker at once.
# Usage: tools/run_tsan_tests.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DDMI_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" --target support_test agent_test integration_test \
    describe_test pool_test batch_test robustness_test telemetry_test artifact_test \
    delta_test serve_test
ctest --test-dir "$build_dir" --output-on-failure \
    -R 'Trace|Metrics|ThreadPool|Runner|Observability|Catalog|Serialize|Pool|CompiledModel|SuiteEquivalence|Robustness|Deadline|Retry|Hostile|Batch|SharedPrefix|Telemetry|Flight|Labeled|CausalSort|Artifact|Registry|Delta|LazyIndex|ModelRegistrySwap|ConcurrentSwap|Admission|Drain|ServeEquivalence|ServeLoop'
