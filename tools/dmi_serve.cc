// dmi_serve: the multi-tenant DMI serving daemon (DESIGN.md §16).
//
// Long-lived front end over serve::SessionManager: compiled app models,
// pooled app instances, and the fleet batch scheduler are resident and
// shared; each inbound request is one agent session admitted under the
// daemon's capacity and per-tenant quotas.
//
// Transport: length-prefixed frames on stdin/stdout (src/serve/wire.h).
// Each request frame is a serve::Request JSON
// ({"schema_version":1,"request_id":7,"tenant":"acme","task":"W3","seed":42});
// each response frame a serve::Response JSON carrying the typed status, the
// run verdict, and the serving latencies. Responses stream in completion
// order — correlate by request_id. Closing stdin drains the daemon
// gracefully: in-flight sessions finish and answer, then the process exits.
// tools/serve_client.py is a minimal reference client.
//
// Usage:
//   dmi_serve [--max-in-flight N] [--queue N]
//             [--tenant-concurrent N] [--tenant-tokens N]
//             [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]
//             [--policy P] [--instability L] [--step-cap N]
//             [--batch N] [--model-dir <dir>] [--app-version V]
//             [--no-prewarm] [--metrics <out.json>]
//
// All shared knobs parse through dmi::ServiceConfig — the same surface as
// dmi_run — so a setting proven offline serves unchanged. Human-readable
// status goes to stderr (stdout belongs to the frame protocol).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/dmi/service_config.h"
#include "src/serve/daemon.h"
#include "src/serve/session_manager.h"
#include "src/support/metrics.h"
#include "src/support/trace_export.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: dmi_serve [--max-in-flight N] [--queue N]\n"
      "                 [--tenant-concurrent N] [--tenant-tokens N]\n"
      "                 [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]\n"
      "                 [--policy none|typical|harsh|hostile]\n"
      "                 [--instability none|typical|harsh|hostile]\n"
      "                 [--step-cap N] [--batch N]\n"
      "                 [--model-dir <dir>] [--app-version V]\n"
      "                 [--no-prewarm] [--metrics <out.json>]\n"
      "reads serve::Request frames on stdin, writes serve::Response frames\n"
      "on stdout; close stdin to drain and exit.\n");
}

}  // namespace

int main(int argc, char** argv) {
  dmi::ServiceConfig service;
  std::string metrics_path;
  bool prewarm = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--no-prewarm") {
      prewarm = false;
    } else if (arg == "--metrics") {
      metrics_path = next("--metrics");
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      support::Status flag_error = support::Status::Ok();
      if (!service.ApplyFlag(arg, next(arg.c_str()), &flag_error)) {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        Usage();
        return 2;
      }
      if (!flag_error.ok()) {
        std::fprintf(stderr, "%s\n", flag_error.message().c_str());
        return 2;
      }
    }
  }

  const support::Status valid = service.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n", valid.message().c_str());
    Usage();
    return 2;
  }

  serve::SessionManager manager(service);
  if (prewarm) {
    manager.PrewarmModels();
  }
  std::fprintf(stderr,
               "dmi_serve: ready (mode=%s model=%s max_in_flight=%d queue=%d%s)\n",
               service.mode.c_str(), service.model.c_str(), service.max_in_flight,
               service.queue_capacity, prewarm ? ", models prewarmed" : "");

  support::Result<serve::ServeLoopStats> served =
      serve::ServeLoop(stdin, stdout, manager);
  manager.Shutdown();

  const serve::SessionManager::Stats stats = manager.stats();
  std::fprintf(stderr,
               "dmi_serve: drained — %llu submitted, %llu admitted, %llu completed "
               "(%llu failed runs), %llu rejected, peak %llu outstanding, "
               "%lld tokens served\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.failed_runs),
               static_cast<unsigned long long>(stats.rejected_queue_full +
                                               stats.rejected_tenant_concurrent +
                                               stats.rejected_tenant_tokens +
                                               stats.rejected_draining),
               static_cast<unsigned long long>(stats.peak_outstanding),
               static_cast<long long>(stats.tokens_served));

  if (!metrics_path.empty()) {
    const support::Status s = support::WriteMetricsJson(
        metrics_path, support::MetricsRegistry::Global().Snapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "dmi_serve: wrote metrics snapshot to %s\n",
                 metrics_path.c_str());
  }
  if (!served.ok()) {
    std::fprintf(stderr, "dmi_serve: transport error: %s\n",
                 served.status().ToString().c_str());
    return 1;
  }
  return 0;
}
