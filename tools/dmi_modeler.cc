// dmi_modeler: command-line offline modeler.
//
// Rips one of the bundled applications into a UI Navigation Graph, runs the
// decycle/externalize pipeline, prints the modeling statistics, and saves
// the compiled model as a binary artifact (compile once, cold-load
// everywhere, DESIGN.md §14). The legacy portable-JSON graph dump survives
// behind --legacy-json, and --from-json converts an existing JSON graph to
// an artifact without re-ripping.
//
// Usage:
//   dmi_modeler --app word|excel|ppoint [--out model.dmim] [--app-version V]
//               [--threshold N] [--depth N] [--print-core]
//   dmi_modeler --app word --legacy-json --out model.json
//   dmi_modeler --app word --from-json model.json --out model.dmim
//   dmi_modeler --inspect model.dmim
//   dmi_modeler --diff old.dmim new.dmim   (exit 1 when the models differ)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "src/agent/task_runner.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/model_artifact.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

void Usage() {
  std::printf(
      "usage: dmi_modeler --app word|excel|ppoint [--out model.dmim]\n"
      "                   [--app-version V] [--threshold N] [--depth N] [--print-core]\n"
      "                   [--legacy-json] [--from-json model.json]\n"
      "       dmi_modeler --inspect model.dmim\n"
      "       dmi_modeler --diff old.dmim new.dmim\n");
}

std::unique_ptr<gsim::Application> MakeApp(const std::string& name,
                                           workload::AppKind* kind) {
  if (name == "word") {
    *kind = workload::AppKind::kWord;
    return std::make_unique<apps::WordSim>();
  }
  if (name == "excel") {
    *kind = workload::AppKind::kExcel;
    return std::make_unique<apps::ExcelSim>();
  }
  if (name == "ppoint") {
    *kind = workload::AppKind::kPpoint;
    return std::make_unique<apps::PpointSim>();
  }
  return nullptr;
}

int Inspect(const std::string& path) {
  support::Result<dmi::ArtifactInfo> info = dmi::InspectModelArtifact(path);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect failed: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: format v%u, app %s-%s, payload %llu bytes, checksum %016llx (%s)\n",
              path.c_str(), info->format_version, info->meta.app_kind.c_str(),
              info->meta.app_version.c_str(),
              static_cast<unsigned long long>(info->payload_bytes),
              static_cast<unsigned long long>(info->stored_checksum),
              info->checksum_ok ? "ok" : "MISMATCH");
  for (const dmi::ArtifactSectionInfo& section : info->sections) {
    std::printf("  %-8s %8llu items %10llu bytes\n", section.name.c_str(),
                static_cast<unsigned long long>(section.items),
                static_cast<unsigned long long>(section.bytes));
  }
  return info->checksum_ok ? 0 : 1;
}

// Structural diff of two model artifacts: which UI partitions changed
// between the app builds, plus the token-cost movement. Exit 0 = identical,
// 1 = differ, 2 = unreadable.
int Diff(const std::string& old_path, const std::string& new_path) {
  const dmi::ModelingOptions runtime;  // compile-time params come from the artifacts
  support::Result<dmi::LoadedModelArtifact> old_loaded =
      dmi::LoadModelArtifact(old_path, runtime);
  if (!old_loaded.ok()) {
    std::fprintf(stderr, "diff: %s\n", old_loaded.status().ToString().c_str());
    return 2;
  }
  support::Result<dmi::LoadedModelArtifact> new_loaded =
      dmi::LoadModelArtifact(new_path, runtime);
  if (!new_loaded.ok()) {
    std::fprintf(stderr, "diff: %s\n", new_loaded.status().ToString().c_str());
    return 2;
  }
  const dmi::CompiledModel& old_model = *old_loaded->model;
  const dmi::CompiledModel& new_model = *new_loaded->model;
  std::printf("old: %s (%s-%s)\nnew: %s (%s-%s)\n", old_path.c_str(),
              old_loaded->meta.app_kind.c_str(), old_loaded->meta.app_version.c_str(),
              new_path.c_str(), new_loaded->meta.app_kind.c_str(),
              new_loaded->meta.app_version.c_str());

  const ripper::ChecksumTable& old_table = old_model.subtree_checksums();
  const ripper::ChecksumTable& new_table = new_model.subtree_checksums();
  const bool have_tables = !old_table.empty() && !new_table.empty();
  bool differ = false;
  if (!have_tables) {
    std::printf("(pre-v2 artifact without a checksum table — partition diff unavailable, "
                "comparing serialized topologies)\n");
    differ = old_model.catalog().FullText() != new_model.catalog().FullText();
  } else {
    auto digest_of = [](const ripper::ChecksumTable& table,
                        const std::string& key) -> unsigned long long {
      for (const ripper::SubtreeChecksum& entry : table) {
        if (entry.key == key) {
          return entry.checksum;
        }
      }
      return 0;
    };
    const ripper::ChecksumDiff diff = ripper::DiffChecksumTables(old_table, new_table);
    for (const std::string& key : diff.changed) {
      std::printf("  ~ %-40s %016llx -> %016llx\n", key.c_str(), digest_of(old_table, key),
                  digest_of(new_table, key));
    }
    for (const std::string& key : diff.added) {
      std::printf("  + %-40s %16s -> %016llx\n", key.c_str(), "", digest_of(new_table, key));
    }
    for (const std::string& key : diff.removed) {
      std::printf("  - %-40s %016llx ->\n", key.c_str(), digest_of(old_table, key));
    }
    std::printf("%zu partitions: %zu changed, %zu added, %zu removed\n", new_table.size(),
                diff.changed.size(), diff.added.size(), diff.removed.size());
    differ = !diff.Empty();
  }

  const dmi::ModelingStats& old_stats = old_model.stats();
  const dmi::ModelingStats& new_stats = new_model.stats();
  auto delta = [](size_t old_value, size_t new_value) {
    return static_cast<long long>(new_value) - static_cast<long long>(old_value);
  };
  std::printf("tokens: core %zu -> %zu (%+lld), full %zu -> %zu (%+lld), "
              "static prompt %zu -> %zu (%+lld)\n",
              old_stats.core_tokens, new_stats.core_tokens,
              delta(old_stats.core_tokens, new_stats.core_tokens), old_stats.full_tokens,
              new_stats.full_tokens, delta(old_stats.full_tokens, new_stats.full_tokens),
              old_model.static_prompt_tokens(), new_model.static_prompt_tokens(),
              delta(old_model.static_prompt_tokens(), new_model.static_prompt_tokens()));
  differ = differ || old_stats.core_tokens != new_stats.core_tokens ||
           old_stats.full_tokens != new_stats.full_tokens ||
           old_model.static_prompt() != new_model.static_prompt();
  std::printf("%s\n", differ ? "models differ" : "models identical");
  return differ ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  std::string out_path;
  std::string app_version = "1";
  std::string inspect_path;
  std::string diff_old;
  std::string diff_new;
  std::string from_json;
  uint64_t threshold = topo::kDefaultExternalizeThreshold;
  int depth = desc::PruneOptions{}.max_depth;
  bool print_core = false;
  bool legacy_json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      app_name = next("--app");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--app-version") {
      app_version = next("--app-version");
    } else if (arg == "--inspect") {
      inspect_path = next("--inspect");
    } else if (arg == "--diff") {
      diff_old = next("--diff");
      diff_new = next("--diff");
    } else if (arg == "--from-json") {
      from_json = next("--from-json");
    } else if (arg == "--legacy-json") {
      legacy_json = true;
    } else if (arg == "--threshold") {
      threshold = static_cast<uint64_t>(std::strtoull(next("--threshold"), nullptr, 10));
    } else if (arg == "--depth") {
      depth = std::atoi(next("--depth"));
    } else if (arg == "--print-core") {
      print_core = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  if (!inspect_path.empty()) {
    return Inspect(inspect_path);
  }
  if (!diff_old.empty()) {
    return Diff(diff_old, diff_new);
  }

  workload::AppKind kind;
  std::unique_ptr<gsim::Application> scratch = MakeApp(app_name, &kind);
  if (scratch == nullptr) {
    Usage();
    return 2;
  }

  dmi::ModelingOptions options = agentsim::TaskRunner::DefaultModelingOptions(kind);
  options.externalize_threshold = threshold;
  options.prune.max_depth = depth;

  topo::NavGraph graph;
  ripper::RipStats rip_stats;
  ripper::ChecksumTable checksums;  // empty on the JSON-conversion path
  if (!from_json.empty()) {
    // Conversion path: adopt a legacy JSON graph dump instead of re-ripping
    // (rip counters are unknown and stay zero in the converted artifact).
    std::printf("loading JSON graph %s ...\n", from_json.c_str());
    support::Result<topo::NavGraph> loaded = dmi::DmiSession::LoadModel(from_json);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    std::printf("ripping %s ...\n", app_name.c_str());
    // Taken on the pristine instance: the saved artifact doubles as a
    // delta-rip baseline (DESIGN.md §15).
    checksums = ripper::ComputeSubtreeChecksums(*scratch);
    ripper::GuiRipper rip(*scratch, options.ripper_config);
    // Canonical layout, like the runner's pipeline: artifacts written here
    // must line up node-for-node as delta-rip baselines.
    graph = rip.Rip(options.contexts).Canonicalized();
    rip_stats = rip.stats();
    std::printf("  %zu controls, %zu edges | %llu clicks, %llu captures, %llu explored, "
                "%.1f min simulated UIA time\n",
                graph.node_count(), graph.edge_count(),
                static_cast<unsigned long long>(rip_stats.clicks),
                static_cast<unsigned long long>(rip_stats.captures),
                static_cast<unsigned long long>(rip_stats.explored),
                rip_stats.simulated_ms / 60000.0);
  }

  std::shared_ptr<const dmi::CompiledModel> model = dmi::CompiledModel::Compile(
      graph, options, &rip_stats, checksums.empty() ? nullptr : &checksums);
  const dmi::ModelingStats& s = model->stats();
  std::printf("pipeline: %zu back-edges removed | forest %zu nodes, %zu shared subtrees, "
              "%zu refs | core %zu nodes / %zu tokens (full %zu tokens)\n",
              s.back_edges_removed, s.forest_nodes, s.shared_subtrees, s.references,
              s.core_nodes, s.core_tokens, s.full_tokens);

  if (print_core) {
    std::printf("\n%s\n", model->catalog().CoreText().c_str());
  }
  if (!out_path.empty()) {
    // SaveModelArtifact creates its own store directory; the legacy JSON dump
    // goes through WriteFileBytes directly, so mirror that here.
    std::error_code ec;
    const std::filesystem::path parent = std::filesystem::path(out_path).parent_path();
    if (!parent.empty()) {
      std::filesystem::create_directories(parent, ec);
    }
    if (legacy_json) {
      // Compatibility: the raw-graph JSON dump (re-runs the whole pipeline
      // on load; kept for cross-version escape hatches).
      support::Status st = dmi::DmiSession::SaveModel(graph, out_path);
      if (!st.ok()) {
        std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("legacy JSON graph saved to %s\n", out_path.c_str());
    } else {
      dmi::ArtifactMeta meta{workload::AppKindName(kind), app_version};
      support::Status st = dmi::SaveModelArtifact(*model, meta, out_path);
      if (!st.ok()) {
        std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("model artifact saved to %s (%s-%s)\n", out_path.c_str(),
                  meta.app_kind.c_str(), meta.app_version.c_str());
    }
  }
  return 0;
}
