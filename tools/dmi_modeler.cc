// dmi_modeler: command-line offline modeler.
//
// Rips one of the bundled applications into a UI Navigation Graph, runs the
// decycle/externalize pipeline, prints the modeling statistics, and
// optionally saves the portable model JSON (reusable across machines for the
// same app build, §5.2).
//
// Usage:
//   dmi_modeler --app word|excel|ppoint [--out model.json]
//               [--threshold N] [--depth N] [--print-core]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/agent/task_runner.h"
#include "src/apps/excel_sim.h"
#include "src/apps/ppoint_sim.h"
#include "src/apps/word_sim.h"
#include "src/dmi/compiled_model.h"
#include "src/dmi/session.h"
#include "src/ripper/ripper.h"

namespace {

void Usage() {
  std::printf(
      "usage: dmi_modeler --app word|excel|ppoint [--out model.json]\n"
      "                   [--threshold N] [--depth N] [--print-core]\n");
}

std::unique_ptr<gsim::Application> MakeApp(const std::string& name,
                                           workload::AppKind* kind) {
  if (name == "word") {
    *kind = workload::AppKind::kWord;
    return std::make_unique<apps::WordSim>();
  }
  if (name == "excel") {
    *kind = workload::AppKind::kExcel;
    return std::make_unique<apps::ExcelSim>();
  }
  if (name == "ppoint") {
    *kind = workload::AppKind::kPpoint;
    return std::make_unique<apps::PpointSim>();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  std::string out_path;
  uint64_t threshold = topo::kDefaultExternalizeThreshold;
  int depth = desc::PruneOptions{}.max_depth;
  bool print_core = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      app_name = next("--app");
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--threshold") {
      threshold = static_cast<uint64_t>(std::strtoull(next("--threshold"), nullptr, 10));
    } else if (arg == "--depth") {
      depth = std::atoi(next("--depth"));
    } else if (arg == "--print-core") {
      print_core = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  workload::AppKind kind;
  std::unique_ptr<gsim::Application> scratch = MakeApp(app_name, &kind);
  if (scratch == nullptr) {
    Usage();
    return 2;
  }

  dmi::ModelingOptions options = agentsim::TaskRunner::DefaultModelingOptions(kind);
  options.externalize_threshold = threshold;
  options.prune.max_depth = depth;

  std::printf("ripping %s ...\n", app_name.c_str());
  ripper::GuiRipper rip(*scratch, options.ripper_config);
  topo::NavGraph graph = rip.Rip(options.contexts);
  const ripper::RipStats& rs = rip.stats();
  std::printf("  %zu controls, %zu edges | %llu clicks, %llu captures, %llu explored, "
              "%.1f min simulated UIA time\n",
              graph.node_count(), graph.edge_count(),
              static_cast<unsigned long long>(rs.clicks),
              static_cast<unsigned long long>(rs.captures),
              static_cast<unsigned long long>(rs.explored), rs.simulated_ms / 60000.0);

  std::shared_ptr<const dmi::CompiledModel> model = dmi::CompiledModel::Compile(graph, options);
  const dmi::ModelingStats& s = model->stats();
  std::printf("pipeline: %zu back-edges removed | forest %zu nodes, %zu shared subtrees, "
              "%zu refs | core %zu nodes / %zu tokens (full %zu tokens)\n",
              s.back_edges_removed, s.forest_nodes, s.shared_subtrees, s.references,
              s.core_nodes, s.core_tokens, s.full_tokens);

  if (print_core) {
    std::printf("\n%s\n", model->catalog().CoreText().c_str());
  }
  if (!out_path.empty()) {
    support::Status st = dmi::DmiSession::SaveModel(graph, out_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("model saved to %s\n", out_path.c_str());
  }
  return 0;
}
