// dmi_run: command-line experiment runner.
//
// Runs the OSWorld-W-like suite (or one task) under a chosen interface and
// model profile, printing per-task results and the aggregate metrics — the
// same machinery behind the Table 3 bench, exposed for exploration.
//
// Usage:
//   dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]
//           [--task W3] [--repeats 3] [--seed 1] [--step-cap 30]
//           [--workers N] [--batch N] [--pool-apps true|false]
//           [--instability none|typical|harsh|hostile]
//           [--policy none|typical|harsh|hostile]
//           [--report-json out.report.json]
//           [--trace out.trace.json] [--metrics out.metrics.json]
//
// Every shared knob parses through dmi::ServiceConfig — the same validated
// configuration surface dmi_serve uses — and is projected onto the legacy
// agentsim::RunConfig via agentsim::RunConfigFromService (DESIGN.md §16).
// Binary-local flags (--task, the export paths) stay here.
//
// --trace enables span recording and writes a Chrome-trace JSON (load it in
// chrome://tracing or https://ui.perfetto.dev); a path ending in .jsonl gets
// the line-delimited event stream instead. --metrics dumps the counter and
// histogram registry after the suite.
//
// --policy adopts a full dmi::Policy preset (instability + typed retry
// schedules + per-run deadline); --instability afterwards overrides just the
// hazard level. --report-json writes the machine-readable suite report in the
// shared serve::ReportSchema shape (schema_version 1): every run's terminal
// status with its structured ErrorDetail payload plus the RenderJson() of its
// last visit report (DESIGN.md §11, §16).
//
// --workers N runs the suite on N concurrent worker threads (0 = one per
// hardware thread); --batch N additionally enables fleet-scale inference
// batching at max batch size N and prints the continuous-batching economics
// (amortized speedup, tokens/sec, prefix tokens saved) after the suite.
// Results are field-identical with batching on or off (DESIGN.md §12).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/agent/service_adapter.h"
#include "src/agent/task_runner.h"
#include "src/dmi/service_config.h"
#include "src/json/json.h"
#include "src/serve/report_schema.h"
#include "src/support/trace.h"
#include "src/support/trace_export.h"

namespace {

void Usage() {
  std::printf(
      "usage: dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]\n"
      "               [--task <id>] [--repeats N] [--seed N] [--step-cap N]\n"
      "               [--workers N] [--batch N] [--pool-apps true|false]\n"
      "               [--instability none|typical|harsh|hostile]\n"
      "               [--policy none|typical|harsh|hostile]\n"
      "               [--report-json <out.json>]\n"
      "               [--trace <out.trace.json|out.jsonl>] [--metrics <out.json>]\n"
      "               [--model-dir <dir>] [--app-version V]\n");
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  dmi::ServiceConfig service;
  std::string task_filter;
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--task") {
      task_filter = next("--task");
    } else if (arg == "--report-json") {
      report_path = next("--report-json");
    } else if (arg.rfind("--report-json=", 0) == 0) {
      report_path = arg.substr(std::strlen("--report-json="));
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--metrics") {
      metrics_path = next("--metrics");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      support::Status flag_error = support::Status::Ok();
      if (!service.ApplyFlag(arg, next(arg.c_str()), &flag_error)) {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        Usage();
        return 2;
      }
      if (!flag_error.ok()) {
        std::fprintf(stderr, "%s\n", flag_error.message().c_str());
        return 2;
      }
    }
  }

  if (!report_path.empty()) {
    service.capture_report_json = true;
  }
  const support::Status valid = service.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n", valid.message().c_str());
    Usage();
    return 2;
  }
  agentsim::RunConfig config = agentsim::RunConfigFromService(service);

  agentsim::TaskRunner runner;
  if (!service.model_dir.empty()) {
    // Attach the binary artifact store: cold-load compiled models from
    // <dir>/<kind>-<version>.dmim (emitted by dmi_modeler or a prior run's
    // save-through) instead of re-running the offline pipeline.
    runner.SetModelDir(service.model_dir, service.app_version);
  }
  std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  if (!task_filter.empty()) {
    std::vector<workload::Task> filtered;
    for (auto& t : tasks) {
      if (t.id == task_filter) {
        filtered.push_back(t);
      }
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "no task with id '%s'\n", task_filter.c_str());
      return 2;
    }
    tasks = std::move(filtered);
  }

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(true);
  }

  std::printf("running %zu task(s), mode=%s, model=%s %s, repeats=%d\n\n", tasks.size(),
              agentsim::InterfaceModeName(config.mode), config.profile.model.c_str(),
              config.profile.reasoning.c_str(), config.repeats);
  agentsim::SuiteResult result = runner.RunSuite(tasks, config);

  for (const auto& record : result.records) {
    std::printf("  %-4s", record.task_id.c_str());
    for (const auto& run : record.runs) {
      if (run.success) {
        std::printf("  [ok %2d steps %5.0fs]", run.llm_calls, run.sim_time_s);
      } else {
        std::printf("  [FAIL: %s]",
                    std::string(agentsim::FailureCauseName(run.cause)).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\nSR=%.1f%%  steps=%.2f  time=%.0fs  one-shot=%.0f%%  (successful runs)\n",
              100.0 * result.SuccessRate(), result.AvgStepsSuccessful(),
              result.AvgTimeSuccessful(), 100.0 * result.OneShotShare());

  if (config.batch.enabled) {
    const agentsim::BatchScheduler::Stats stats = runner.batch_stats();
    std::printf(
        "\nfleet batching (max batch %zu): %llu calls in %llu batches\n"
        "  amortized call latency %.1fs (serial %.1fs, speedup %.2fx)\n"
        "  throughput %.0f tok/s, prefix tokens saved %llu\n",
        config.batch.max_batch_size,
        static_cast<unsigned long long>(stats.calls),
        static_cast<unsigned long long>(stats.batches),
        stats.AmortizedCallLatencyS(),
        stats.calls > 0 ? stats.serial_latency_s / static_cast<double>(stats.calls) : 0.0,
        stats.AmortizedSpeedup(), stats.TokensPerSec(),
        static_cast<unsigned long long>(stats.prefix_tokens_saved));
  }

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(false);
    const std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
    const support::Status s = EndsWith(trace_path, ".jsonl")
                                  ? support::WriteTraceJsonl(trace_path, events)
                                  : support::WriteChromeTrace(trace_path, events);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", events.size(), trace_path.c_str());
  }
  if (!report_path.empty()) {
    const agentsim::BatchScheduler::Stats batch_stats =
        config.batch.enabled ? runner.batch_stats() : agentsim::BatchScheduler::Stats{};
    const std::string doc =
        serve::SuiteReportJson(config, result,
                               config.batch.enabled ? &batch_stats : nullptr)
            .DumpPretty();
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", report_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote run report to %s\n", report_path.c_str());
  }
  if (!metrics_path.empty()) {
    const support::Status s = support::WriteMetricsJson(
        metrics_path, support::MetricsRegistry::Global().Snapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
