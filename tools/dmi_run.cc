// dmi_run: command-line experiment runner.
//
// Runs the OSWorld-W-like suite (or one task) under a chosen interface and
// model profile, printing per-task results and the aggregate metrics — the
// same machinery behind the Table 3 bench, exposed for exploration.
//
// Usage:
//   dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]
//           [--task W3] [--repeats 3] [--seed 1]
//           [--workers N] [--batch N]
//           [--instability none|typical|harsh|hostile]
//           [--policy none|typical|harsh|hostile]
//           [--report-json out.report.json]
//           [--trace out.trace.json] [--metrics out.metrics.json]
//
// --trace enables span recording and writes a Chrome-trace JSON (load it in
// chrome://tracing or https://ui.perfetto.dev); a path ending in .jsonl gets
// the line-delimited event stream instead. --metrics dumps the counter and
// histogram registry after the suite.
//
// --policy adopts a full dmi::Policy preset (instability + typed retry
// schedules + per-run deadline); --instability afterwards overrides just the
// hazard level. --report-json writes a machine-readable suite report: every
// run's terminal status with its structured ErrorDetail payload plus the
// RenderJson() of its last visit report (DESIGN.md §11).
//
// --workers N runs the suite on N concurrent worker threads (0 = one per
// hardware thread); --batch N additionally enables fleet-scale inference
// batching at max batch size N and prints the continuous-batching economics
// (amortized speedup, tokens/sec, prefix tokens saved) after the suite.
// Results are field-identical with batching on or off (DESIGN.md §12).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/agent/task_runner.h"
#include "src/dmi/policy.h"
#include "src/json/json.h"
#include "src/support/trace.h"
#include "src/support/trace_export.h"

namespace {

void Usage() {
  std::printf(
      "usage: dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]\n"
      "               [--task <id>] [--repeats N] [--seed N]\n"
      "               [--workers N] [--batch N]\n"
      "               [--instability none|typical|harsh|hostile]\n"
      "               [--policy none|typical|harsh|hostile]\n"
      "               [--report-json <out.json>]\n"
      "               [--trace <out.trace.json|out.jsonl>] [--metrics <out.json>]\n"
      "               [--model-dir <dir>] [--app-version V]\n");
}

jsonv::Value StatusToJson(const support::Status& status) {
  jsonv::Object obj;
  obj["code"] = support::StatusCodeName(status.code());
  obj["message"] = status.message();
  if (status.has_detail()) {
    const support::ErrorDetail& d = status.detail();
    jsonv::Object detail;
    detail["control_id"] = d.control_id;
    detail["control_name"] = d.control_name;
    detail["required_pattern"] = d.required_pattern;
    detail["retryable"] = d.retryable;
    detail["attempts"] = d.attempts;
    detail["backoff_ticks"] = static_cast<int64_t>(d.backoff_ticks);
    obj["error_detail"] = jsonv::Value(std::move(detail));
  }
  return jsonv::Value(std::move(obj));
}

// The machine-readable suite report (--report-json). `batch_stats` is the
// fleet-mode continuous-batching economics, null when batching is off.
jsonv::Value SuiteReportJson(const agentsim::RunConfig& config,
                             const agentsim::SuiteResult& result,
                             const agentsim::BatchScheduler::Stats* batch_stats) {
  jsonv::Object root;
  root["mode"] = agentsim::InterfaceModeName(config.mode);
  root["model"] = config.profile.model;
  root["seed"] = static_cast<int64_t>(config.seed);
  root["repeats"] = config.repeats;
  if (!config.policy_label.empty()) {
    root["policy"] = config.policy_label;
  }
  root["success_rate"] = result.SuccessRate();
  jsonv::Array task_entries;
  for (const auto& record : result.records) {
    jsonv::Object task;
    task["task"] = record.task_id;
    jsonv::Array runs;
    for (const auto& run : record.runs) {
      jsonv::Object r;
      r["success"] = run.success;
      r["llm_calls"] = run.llm_calls;
      r["core_calls"] = run.core_calls;
      r["sim_time_s"] = run.sim_time_s;
      r["ui_actions"] = static_cast<int64_t>(run.ui_actions);
      r["run_id"] = static_cast<int64_t>(run.run_id);
      r["cause"] = std::string(agentsim::FailureCauseName(run.cause));
      r["final_status"] = StatusToJson(run.final_status);
      if (!run.success && run.flight != nullptr) {
        // Failed run: render the flight recorder — the failing command with
        // its ErrorDetail, retry/backoff spending, prompt tokens, and batch
        // membership (DESIGN.md §13).
        r["flight_recorder"] = support::FlightRecorderJson(*run.flight);
      }
      if (!run.report_json.empty()) {
        // The per-run visit report is itself RenderJson() output; embed it as
        // a JSON value (round-trips by construction).
        support::Result<jsonv::Value> parsed = jsonv::Parse(run.report_json);
        r["visit_report"] = parsed.ok() ? std::move(*parsed) : jsonv::Value(nullptr);
      }
      runs.push_back(jsonv::Value(std::move(r)));
    }
    task["runs"] = jsonv::Value(std::move(runs));
    task_entries.push_back(jsonv::Value(std::move(task)));
  }
  root["tasks"] = jsonv::Value(std::move(task_entries));
  if (batch_stats != nullptr) {
    jsonv::Object fleet;
    fleet["workers"] = config.workers;
    fleet["max_batch_size"] = static_cast<int64_t>(config.batch.max_batch_size);
    fleet["calls"] = static_cast<int64_t>(batch_stats->calls);
    fleet["batches"] = static_cast<int64_t>(batch_stats->batches);
    fleet["amortized_call_latency_s"] = batch_stats->AmortizedCallLatencyS();
    fleet["amortized_speedup"] = batch_stats->AmortizedSpeedup();
    fleet["tokens_per_sec"] = batch_stats->TokensPerSec();
    fleet["prefix_tokens_saved"] = static_cast<int64_t>(batch_stats->prefix_tokens_saved);
    root["fleet_batching"] = jsonv::Value(std::move(fleet));
  }
  return jsonv::Value(std::move(root));
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  std::string task_filter;
  std::string trace_path;
  std::string metrics_path;
  std::string report_path;
  std::string model_dir;
  std::string app_version = "1";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next("--mode");
      if (m == "gui") {
        config.mode = agentsim::InterfaceMode::kGuiOnly;
      } else if (m == "forest") {
        config.mode = agentsim::InterfaceMode::kGuiOnlyForest;
      } else if (m == "dmi") {
        config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--model") {
      const std::string m = next("--model");
      if (m == "gpt5") {
        config.profile = agentsim::LlmProfile::Gpt5Medium();
      } else if (m == "gpt5min") {
        config.profile = agentsim::LlmProfile::Gpt5Minimal();
      } else if (m == "mini") {
        config.profile = agentsim::LlmProfile::Gpt5MiniMedium();
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--task") {
      task_filter = next("--task");
    } else if (arg == "--repeats") {
      config.repeats = std::atoi(next("--repeats"));
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::strtoull(next("--seed"), nullptr, 10));
    } else if (arg == "--workers") {
      config.workers = std::atoi(next("--workers"));
    } else if (arg == "--batch") {
      const int n = std::atoi(next("--batch"));
      if (n <= 0) {
        std::fprintf(stderr, "--batch needs a positive batch size\n");
        return 2;
      }
      config.batch.enabled = true;
      config.batch.max_batch_size = static_cast<size_t>(n);
    } else if (arg == "--instability") {
      const std::string level = next("--instability");
      if (level == "none") {
        config.instability = gsim::InstabilityConfig::None();
      } else if (level == "typical") {
        config.instability = gsim::InstabilityConfig::Typical();
      } else if (level == "harsh") {
        config.instability = gsim::InstabilityConfig::Harsh();
      } else if (level == "hostile") {
        config.instability = gsim::InstabilityConfig::Hostile();
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--policy") {
      const std::string preset = next("--policy");
      if (preset == "none") {
        config.ApplyPolicy(dmi::Policy::None());
      } else if (preset == "typical") {
        config.ApplyPolicy(dmi::Policy::Typical());
      } else if (preset == "harsh") {
        config.ApplyPolicy(dmi::Policy::Harsh());
      } else if (preset == "hostile") {
        config.ApplyPolicy(dmi::Policy::Hostile());
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--report-json") {
      report_path = next("--report-json");
    } else if (arg.rfind("--report-json=", 0) == 0) {
      report_path = arg.substr(std::strlen("--report-json="));
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--metrics") {
      metrics_path = next("--metrics");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--model-dir") {
      model_dir = next("--model-dir");
    } else if (arg == "--app-version") {
      app_version = next("--app-version");
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  agentsim::TaskRunner runner;
  if (!model_dir.empty()) {
    // Attach the binary artifact store: cold-load compiled models from
    // <dir>/<kind>-<version>.dmim (emitted by dmi_modeler or a prior run's
    // save-through) instead of re-running the offline pipeline.
    runner.SetModelDir(model_dir, app_version);
  }
  std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  if (!task_filter.empty()) {
    std::vector<workload::Task> filtered;
    for (auto& t : tasks) {
      if (t.id == task_filter) {
        filtered.push_back(t);
      }
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "no task with id '%s'\n", task_filter.c_str());
      return 2;
    }
    tasks = std::move(filtered);
  }

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(true);
  }
  if (!report_path.empty()) {
    config.capture_report_json = true;
  }

  std::printf("running %zu task(s), mode=%s, model=%s %s, repeats=%d\n\n", tasks.size(),
              agentsim::InterfaceModeName(config.mode), config.profile.model.c_str(),
              config.profile.reasoning.c_str(), config.repeats);
  agentsim::SuiteResult result = runner.RunSuite(tasks, config);

  for (const auto& record : result.records) {
    std::printf("  %-4s", record.task_id.c_str());
    for (const auto& run : record.runs) {
      if (run.success) {
        std::printf("  [ok %2d steps %5.0fs]", run.llm_calls, run.sim_time_s);
      } else {
        std::printf("  [FAIL: %s]",
                    std::string(agentsim::FailureCauseName(run.cause)).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\nSR=%.1f%%  steps=%.2f  time=%.0fs  one-shot=%.0f%%  (successful runs)\n",
              100.0 * result.SuccessRate(), result.AvgStepsSuccessful(),
              result.AvgTimeSuccessful(), 100.0 * result.OneShotShare());

  if (config.batch.enabled) {
    const agentsim::BatchScheduler::Stats stats = runner.batch_stats();
    std::printf(
        "\nfleet batching (max batch %zu): %llu calls in %llu batches\n"
        "  amortized call latency %.1fs (serial %.1fs, speedup %.2fx)\n"
        "  throughput %.0f tok/s, prefix tokens saved %llu\n",
        config.batch.max_batch_size,
        static_cast<unsigned long long>(stats.calls),
        static_cast<unsigned long long>(stats.batches),
        stats.AmortizedCallLatencyS(),
        stats.calls > 0 ? stats.serial_latency_s / static_cast<double>(stats.calls) : 0.0,
        stats.AmortizedSpeedup(), stats.TokensPerSec(),
        static_cast<unsigned long long>(stats.prefix_tokens_saved));
  }

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(false);
    const std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
    const support::Status s = EndsWith(trace_path, ".jsonl")
                                  ? support::WriteTraceJsonl(trace_path, events)
                                  : support::WriteChromeTrace(trace_path, events);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", events.size(), trace_path.c_str());
  }
  if (!report_path.empty()) {
    const agentsim::BatchScheduler::Stats batch_stats =
        config.batch.enabled ? runner.batch_stats() : agentsim::BatchScheduler::Stats{};
    const std::string doc =
        SuiteReportJson(config, result,
                        config.batch.enabled ? &batch_stats : nullptr)
            .DumpPretty();
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", report_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote run report to %s\n", report_path.c_str());
  }
  if (!metrics_path.empty()) {
    const support::Status s = support::WriteMetricsJson(
        metrics_path, support::MetricsRegistry::Global().Snapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
