// dmi_run: command-line experiment runner.
//
// Runs the OSWorld-W-like suite (or one task) under a chosen interface and
// model profile, printing per-task results and the aggregate metrics — the
// same machinery behind the Table 3 bench, exposed for exploration.
//
// Usage:
//   dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]
//           [--task W3] [--repeats 3] [--seed 1]
//           [--instability none|typical|harsh]
//           [--trace out.trace.json] [--metrics out.metrics.json]
//
// --trace enables span recording and writes a Chrome-trace JSON (load it in
// chrome://tracing or https://ui.perfetto.dev); a path ending in .jsonl gets
// the line-delimited event stream instead. --metrics dumps the counter and
// histogram registry after the suite.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/agent/task_runner.h"
#include "src/support/trace.h"
#include "src/support/trace_export.h"

namespace {

void Usage() {
  std::printf(
      "usage: dmi_run [--mode gui|forest|dmi] [--model gpt5|gpt5min|mini]\n"
      "               [--task <id>] [--repeats N] [--seed N]\n"
      "               [--instability none|typical|harsh]\n"
      "               [--trace <out.trace.json|out.jsonl>] [--metrics <out.json>]\n");
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  agentsim::RunConfig config;
  config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
  std::string task_filter;
  std::string trace_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      const std::string m = next("--mode");
      if (m == "gui") {
        config.mode = agentsim::InterfaceMode::kGuiOnly;
      } else if (m == "forest") {
        config.mode = agentsim::InterfaceMode::kGuiOnlyForest;
      } else if (m == "dmi") {
        config.mode = agentsim::InterfaceMode::kGuiPlusDmi;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--model") {
      const std::string m = next("--model");
      if (m == "gpt5") {
        config.profile = agentsim::LlmProfile::Gpt5Medium();
      } else if (m == "gpt5min") {
        config.profile = agentsim::LlmProfile::Gpt5Minimal();
      } else if (m == "mini") {
        config.profile = agentsim::LlmProfile::Gpt5MiniMedium();
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--task") {
      task_filter = next("--task");
    } else if (arg == "--repeats") {
      config.repeats = std::atoi(next("--repeats"));
    } else if (arg == "--seed") {
      config.seed = static_cast<uint64_t>(std::strtoull(next("--seed"), nullptr, 10));
    } else if (arg == "--instability") {
      const std::string level = next("--instability");
      if (level == "none") {
        config.instability = gsim::InstabilityConfig::None();
      } else if (level == "typical") {
        config.instability = gsim::InstabilityConfig::Typical();
      } else if (level == "harsh") {
        config.instability = gsim::InstabilityConfig::Harsh();
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--metrics") {
      metrics_path = next("--metrics");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  agentsim::TaskRunner runner;
  std::vector<workload::Task> tasks = workload::BuildOsworldWSuite();
  if (!task_filter.empty()) {
    std::vector<workload::Task> filtered;
    for (auto& t : tasks) {
      if (t.id == task_filter) {
        filtered.push_back(t);
      }
    }
    if (filtered.empty()) {
      std::fprintf(stderr, "no task with id '%s'\n", task_filter.c_str());
      return 2;
    }
    tasks = std::move(filtered);
  }

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(true);
  }

  std::printf("running %zu task(s), mode=%s, model=%s %s, repeats=%d\n\n", tasks.size(),
              agentsim::InterfaceModeName(config.mode), config.profile.model.c_str(),
              config.profile.reasoning.c_str(), config.repeats);
  agentsim::SuiteResult result = runner.RunSuite(tasks, config);

  for (const auto& record : result.records) {
    std::printf("  %-4s", record.task_id.c_str());
    for (const auto& run : record.runs) {
      if (run.success) {
        std::printf("  [ok %2d steps %5.0fs]", run.llm_calls, run.sim_time_s);
      } else {
        std::printf("  [FAIL: %s]",
                    std::string(agentsim::FailureCauseName(run.cause)).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\nSR=%.1f%%  steps=%.2f  time=%.0fs  one-shot=%.0f%%  (successful runs)\n",
              100.0 * result.SuccessRate(), result.AvgStepsSuccessful(),
              result.AvgTimeSuccessful(), 100.0 * result.OneShotShare());

  if (!trace_path.empty()) {
    support::TraceRecorder::Global().SetEnabled(false);
    const std::vector<support::TraceEvent> events = support::TraceRecorder::Global().Drain();
    const support::Status s = EndsWith(trace_path, ".jsonl")
                                  ? support::WriteTraceJsonl(trace_path, events)
                                  : support::WriteChromeTrace(trace_path, events);
    if (!s.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", events.size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const support::Status s = support::WriteMetricsJson(
        metrics_path, support::MetricsRegistry::Global().Snapshot());
    if (!s.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  return 0;
}
